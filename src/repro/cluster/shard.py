"""Per-shard admission service: the existing stack over one shard view.

A shard is nothing new — that is the point.  :class:`LocalShard` runs the
unchanged ``AdmissionService`` + ``DurabilityStore`` + recovery pipeline
over the shard's own tree (:class:`~repro.cluster.partition.ShardView`), so
every durability and degradation property the single-node service earned
(WAL ordering, rollback-on-journal-failure, idempotent retries, oracle
replay) holds per shard by construction.

:class:`ShardHandle` is the transport-neutral interface the coordinator
programs against; :class:`~repro.cluster.worker.ProcessShard` implements
the same surface over a child process for GIL-free parallelism.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.allocation.base import Allocation
from repro.cluster.partition import ShardView
from repro.manager.network_manager import NetworkManager
from repro.obs.flightrec import flight_recorder
from repro.obs.instruments import admission_instruments, global_registry
from repro.obs.tracing import TraceContext
from repro.service.concurrency import AdmissionService
from repro.service.errors import ServiceError
from repro.service.journal import DurabilityStore
from repro.service.recovery import recover_manager


class ShardAdoptError(ServiceError):
    """A cross-shard fragment could not be installed on this shard."""


class ShardHandle:
    """What the coordinator needs from a shard, local or remote.

    ``submit``/``adopt``/``release`` move resources; ``stats``,
    ``idem_lookup`` and ``active_allocations`` are read-only.  All
    allocations crossing this interface carry **shard-local** node/link ids
    — the coordinator owns every translation to and from global ids.
    """

    index: int
    view: ShardView

    def submit(
        self,
        request,
        idempotency_key: Optional[str] = None,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        raise NotImplementedError

    def adopt(
        self,
        allocation: Allocation,
        idempotency_key: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> int:
        raise NotImplementedError

    def release(self, request_id: int) -> bool:
        raise NotImplementedError

    def resize(
        self,
        request_id: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Resize a shard-local tenancy; the decision carries the
        post-resize shard-local allocation for accepted outcomes."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        raise NotImplementedError

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The shard process's full metrics-registry snapshot (federation)."""
        raise NotImplementedError

    def obs_dump(self) -> Dict[str, Any]:
        """Flight-recorder ring + recent traces of the shard process."""
        raise NotImplementedError

    def idem_lookup(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def active_allocations(self) -> Dict[int, Allocation]:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class LocalShard(ShardHandle):
    """In-process shard: deterministic, used by tests and the chaos referee.

    With ``directory=None`` the shard runs without a WAL (pure in-memory,
    for the metrics-schema bootstrap and quick experiments); otherwise it
    recovers from the directory on construction exactly like a restarted
    daemon would.
    """

    def __init__(
        self,
        view: ShardView,
        directory: Optional[Path] = None,
        *,
        epsilon: float = 0.05,
        allocator=None,
        workers: int = 1,
        mode: str = "online",
        fsync: bool = False,
        snapshot_every: Optional[int] = None,
        degradation=None,
        decision_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.view = view
        self.index = view.shard_index
        self.decision_timeout_s = decision_timeout_s
        idempotency_index = None
        if directory is not None:
            self.store: Optional[DurabilityStore] = DurabilityStore(
                Path(directory), fsync=fsync, snapshot_every=snapshot_every
            )
            manager, report = recover_manager(
                self.store, view.tree, epsilon=epsilon, allocator=allocator
            )
            idempotency_index = report.idempotency_index
            self.recovery_report = report
        else:
            self.store = None
            self.recovery_report = None
            manager = NetworkManager(view.tree, epsilon=epsilon, allocator=allocator)
        self.manager = manager
        self.service = AdmissionService(
            manager,
            store=self.store,
            mode=mode,
            workers=workers,
            clock=clock,
            degradation=degradation,
            idempotency_index=idempotency_index,
        )
        self.service.start()

    # ------------------------------------------------------------------
    # ShardHandle surface
    # ------------------------------------------------------------------

    def submit(
        self,
        request,
        idempotency_key: Optional[str] = None,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        ticket = self.service.submit(
            request,
            wait=True,
            wait_timeout=self.decision_timeout_s if timeout is None else timeout,
            idempotency_key=idempotency_key,
            trace_context=trace,
        )
        if not ticket.done:
            raise ServiceError(
                f"shard {self.index} did not decide within the timeout"
            )
        decision: Dict[str, Any] = {
            "outcome": ticket.outcome,
            "request_id": ticket.request_id,
            "detail": ticket.detail,
            "allocation": None,
        }
        if ticket.outcome == "admitted" and ticket.request_id is not None:
            tenancy = self.manager.get_tenancy(ticket.request_id)
            if tenancy is not None:
                decision["allocation"] = tenancy.allocation
        return decision

    def adopt(
        self,
        allocation: Allocation,
        idempotency_key: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> int:
        return self.service.adopt(
            allocation, idempotency_key=idempotency_key, trace_context=trace
        )

    def release(self, request_id: int) -> bool:
        return self.service.release(request_id)

    def resize(
        self,
        request_id: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        decision = dict(
            self.service.resize(
                request_id,
                new_n=new_n,
                new_mu=new_mu,
                new_sigma=new_sigma,
                idempotency_key=idempotency_key,
            )
        )
        decision.setdefault("allocation", None)
        if decision.get("outcome") in ("in_place", "replaced"):
            tenancy = self.manager.get_tenancy(request_id)
            if tenancy is not None:
                decision["allocation"] = tenancy.allocation
        return decision

    def stats(self) -> Dict[str, Any]:
        manager = self.manager
        ready, parked = self.service.queue_depths()
        return {
            "shard": self.index,
            "free_slots": manager.state.total_free_slots,
            "total_slots": manager.state.total_slots,
            "queue_depth": ready + parked,
            "active_tenancies": manager.active_tenancies,
            "max_occupancy": manager.max_occupancy(),
            "crashed": self.service.crashed,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        # Parity with ProcessShard: a killed shard fails its scrape instead
        # of answering from beyond the grave.
        if not self.service.running or self.service.crashed:
            raise ServiceError(f"shard {self.index} is down")
        # In-process shards share the process-global registry, so the
        # "shard snapshot" is simply this process's snapshot — the federated
        # view stays meaningful because the coordinator labels it.
        return global_registry().snapshot()

    def obs_dump(self) -> Dict[str, Any]:
        instruments = admission_instruments()
        tracer = getattr(instruments, "tracer", None)
        return {
            "shard": self.index,
            "pid": os.getpid(),
            "flight": flight_recorder().events(),
            "traces": tracer.recent() if tracer is not None else [],
        }

    def idem_lookup(self, key: str) -> Optional[Dict[str, Any]]:
        known = self.service.lookup_idempotency(key)
        if known is None:
            return None
        request_id = known.get("request_id")
        allocation = None
        # Accepted resizes attach the tenancy's *current* allocation the
        # same way admissions do — the coordinator's recovery treats the
        # shard as authoritative for post-resize sizes.
        if (
            known.get("outcome") in ("admitted", "in_place", "replaced")
            and request_id is not None
        ):
            tenancy = self.manager.get_tenancy(int(request_id))
            if tenancy is not None:
                allocation = tenancy.allocation
        found = {
            "outcome": known.get("outcome"),
            "request_id": request_id,
            "allocation": allocation,
        }
        if known.get("resize"):
            found["resize"] = True
        return found

    def active_allocations(self) -> Dict[int, Allocation]:
        return {
            tenancy.request_id: tenancy.allocation
            for tenancy in self.manager.tenancies()
        }

    @property
    def alive(self) -> bool:
        return not self.service.crashed

    def kill(self) -> None:
        """Simulated shard death: freeze without draining (chaos harness)."""
        self.service.kill()
        if self.store is not None:
            self.store.close()

    def stop(self) -> None:
        self.service.stop()
        if self.store is not None:
            self.store.close()

    def close(self) -> None:
        self.stop()
