"""``svc-repro cluster`` — drive a sharded admission cluster from the shell.

Two modes share one parser:

* **drive** (default): build a K-shard cluster over the chosen scale, push a
  seeded workload through the coordinator and print the routing/occupancy
  summary.  ``--process`` runs each shard in its own child process (the
  GIL-free configuration the throughput benchmark uses); ``--workdir`` makes
  the run durable so a second invocation recovers and continues.
* **chaos** (``--chaos N``): run N seeded kill/recover schedules against the
  coordinator + shards and verify the cluster recovery contract (no lost
  acked admissions, no reservation leaks, no double admits; see
  :mod:`repro.cluster.chaos`).  Exit status 0 only when every schedule holds.

Examples::

    svc-repro cluster --shards 4 --scale small --requests 200
    svc-repro cluster --shards 2 --workdir /tmp/cluster --requests 50
    svc-repro cluster --chaos 200 --seed 0
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.config import SCALES
from repro.logconfig import LOG_LEVELS, setup_logging


def build_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro cluster",
        description=(
            "Run a sharded admission cluster (coordinator + K shards), or its "
            "chaos referee (--chaos N)."
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=2,
        help="number of shards, at most one pod each (default: 2)",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="tiny",
        help="datacenter scale the cluster partitions (default: tiny)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed; chaos schedule i uses seed+i (default: 0)",
    )
    parser.add_argument(
        "--requests", type=int, default=100,
        help="drive mode: tenant requests to submit (default: 100)",
    )
    parser.add_argument(
        "--release-prob", type=float, default=0.25,
        help="drive mode: per-step chance an admitted tenant departs (default: 0.25)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.05,
        help="SLA risk factor for every shard and the coordinator (default: 0.05)",
    )
    parser.add_argument(
        "--process", action="store_true",
        help="drive mode: run each shard in a child process instead of in-process",
    )
    parser.add_argument(
        "--workdir", type=Path, default=None,
        help="durability directory (WALs land here; re-running recovers from it)",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="drive mode: write the federated cluster metrics snapshot "
        "(every shard's registry + the coordinator's, merged) as JSON here",
    )
    parser.add_argument(
        "--obs-out", type=Path, default=None, metavar="PATH",
        help="drive mode: write the cluster-wide observability dump "
        "(flight-recorder rings + recent traces) as JSON here",
    )
    parser.add_argument(
        "--chaos", type=int, default=None, metavar="N",
        help="run N cluster chaos schedules instead of a workload drive",
    )
    parser.add_argument(
        "--operations", type=int, default=40,
        help="chaos mode: admit/release operations per schedule (default: 40)",
    )
    parser.add_argument(
        "--stop-on-failure", action="store_true",
        help="chaos mode: stop at the first failing schedule",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON report on stdout instead of text",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="error",
        help="stderr log verbosity (default: error)",
    )
    return parser


def _drive(args: argparse.Namespace, workdir: Optional[Path]) -> int:
    """Default mode: seeded workload through a freshly built cluster."""
    from repro.cluster.chaos import _workload_request
    from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
    from repro.cluster.partition import ClusterPartition
    from repro.cluster.rebalance import ShardLoadRebalancer
    from repro.cluster.shard import LocalShard
    from repro.service.errors import ServiceError

    spec = SCALES[args.scale].spec
    partition = ClusterPartition.build(spec, args.shards)
    if args.process:
        from repro.cluster.worker import ProcessShard, wait_for_shards

        shards: List[Any] = [
            ProcessShard(
                view,
                workdir / f"shard-{view.shard_index}" if workdir else None,
                epsilon=args.epsilon,
            )
            for view in partition.shards
        ]
        wait_for_shards(shards)
    else:
        shards = [
            LocalShard(
                view,
                workdir / f"shard-{view.shard_index}" if workdir else None,
                epsilon=args.epsilon,
            )
            for view in partition.shards
        ]
    coordinator = ClusterCoordinator(
        partition,
        shards,
        directory=workdir,
        epsilon=args.epsilon,
        rebalancer=ShardLoadRebalancer(args.shards, interval_s=0.0),
    )
    rng = random.Random(args.seed)
    shard_slots = partition.shards[0].total_slots
    routes: Dict[str, int] = {}
    active: List[int] = []
    errors = 0
    try:
        for index in range(args.requests):
            if active and rng.random() < args.release_prob:
                coordinator.release(active.pop(rng.randrange(len(active))))
            request = _workload_request(rng, shard_slots)
            try:
                decision = coordinator.submit(
                    request, idempotency_key=f"drive-{args.seed}-{index}"
                )
            except (CoordinatorError, ServiceError):
                errors += 1
                continue
            route = decision.get("route", "recovered")
            routes[route] = routes.get(route, 0) + 1
            if decision["outcome"] == "admitted":
                active.append(decision["request_id"])
        coordinator.refresh_shard_stats()
        stats = coordinator.stats()
        if args.metrics_out is not None:
            federated = coordinator.cluster_metrics()
            args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
            args.metrics_out.write_text(
                json.dumps(federated, indent=2, default=str), encoding="utf-8"
            )
            print(f"federated metrics written: {args.metrics_out}", file=sys.stderr)
        if args.obs_out is not None:
            dumps = coordinator.collect_obs_dumps()
            args.obs_out.parent.mkdir(parents=True, exist_ok=True)
            args.obs_out.write_text(
                json.dumps(dumps, indent=2, default=str), encoding="utf-8"
            )
            print(f"observability dump written: {args.obs_out}", file=sys.stderr)
        report = {
            "scale": args.scale,
            "shards": args.shards,
            "process_shards": bool(args.process),
            "requests": args.requests,
            "routes": routes,
            "transport_errors": errors,
            "stats": stats,
        }
        if args.json:
            print(json.dumps(report, indent=2, default=str))
        else:
            print(
                f"cluster: {args.requests} request(s) over {args.shards} shard(s) "
                f"at scale {args.scale!r}"
            )
            for route in sorted(routes):
                print(f"  route {route}: {routes[route]}")
            print(
                f"  admitted {stats['admitted_total']}, rejected "
                f"{stats['rejected_total']}, active {stats['active_tenancies']}, "
                f"transport errors {errors}"
            )
            occupancy = max(stats["core_occupancy"].values() or [0.0])
            print(
                f"  max core-link occupancy {occupancy:.3f}, replica max "
                f"{stats['replica_max_occupancy']:.3f}, free slots "
                f"{stats['free_slots']}"
            )
        return 0
    finally:
        coordinator.stop()
        for shard in shards:
            shard.close()


def _chaos(args: argparse.Namespace, workdir: Path) -> int:
    """``--chaos N``: the cluster recovery referee."""
    from repro.cluster.chaos import ClusterChaosResult, run_cluster_chaos_suite

    def progress(result: ClusterChaosResult) -> None:
        if args.json:
            return
        if not result.ok:
            sys.stderr.write(f"seed {result.seed}: FAILED {result.failures}\n")
        elif (result.seed - args.seed + 1) % 25 == 0:
            sys.stderr.write(
                f"... {result.seed - args.seed + 1}/{args.chaos} schedules\n"
            )

    results = run_cluster_chaos_suite(
        schedules=args.chaos,
        base_seed=args.seed,
        workdir=workdir,
        shards=args.shards,
        scale=args.scale,
        operations=args.operations,
        stop_on_failure=args.stop_on_failure,
        progress=progress,
    )
    if args.json:
        print(json.dumps({"results": [r.describe() for r in results]}, indent=2))
    else:
        crashed = sum(1 for r in results if r.crashed)
        admits = sum(r.acked_admits for r in results)
        cross = sum(r.cross_shard_admits for r in results)
        failures = [r for r in results if not r.ok]
        print(
            f"cluster chaos: {len(results)} schedule(s), {crashed} crashed "
            f"mid-run, {admits} acked admits ({cross} cross-shard)"
        )
        for result in failures:
            for message in result.failures:
                print(f"  FAIL seed={result.seed}: {message}")
        print("cluster chaos: OK" if not failures
              else f"cluster chaos: {len(failures)} schedule(s) FAILED")
    return 0 if all(r.ok for r in results) else 1


def cluster_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``svc-repro cluster``."""
    args = build_cluster_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.shards < 1:
        print("cluster: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.chaos is not None:
        if args.workdir is not None:
            return _chaos(args, args.workdir)
        with tempfile.TemporaryDirectory(prefix="svc-repro-cluster-") as tmp:
            return _chaos(args, Path(tmp))
    return _drive(args, args.workdir)


if __name__ == "__main__":
    raise SystemExit(cluster_main())
