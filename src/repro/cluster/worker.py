"""Process-backed shard: the same ShardHandle surface, minus the GIL.

Thread-based shards cannot deliver the tentpole's near-linear admission
throughput — every allocator call would still serialize on the interpreter
lock.  :class:`ProcessShard` therefore runs the shard stack in a child
process (``multiprocessing`` spawn context, so no fork-with-threads
hazards) and speaks a small op/reply protocol over a pipe, with payloads
encoded through :mod:`repro.service.codec` — the same wire shapes the TCP
server uses, so nothing here invents a second serialization story.

The pipe is guarded by a per-shard lock: one outstanding op per shard,
parallelism comes from having K shards.  ``kill()`` SIGKILLs the child —
a *real* crash, torn WAL tail and all — and a fresh ProcessShard over the
same directory recovers through the standard journal pipeline.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.allocation.base import Allocation
from repro.cluster.partition import ShardView, build_shard_tree
from repro.cluster.shard import LocalShard, ShardHandle
from repro.obs.flightrec import configure_flight_recorder
from repro.obs.instruments import configure as configure_obs
from repro.obs.tracing import TraceContext, record_remote_span, take_remote_spans
from repro.service.codec import (
    allocation_from_dict,
    allocation_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.service.errors import CODE_CONFLICT, ConflictError, ServiceError
from repro.topology.builder import DatacenterSpec


def _decision_to_wire(decision: Dict[str, Any]) -> Dict[str, Any]:
    wire = dict(decision)
    if wire.get("allocation") is not None:
        wire["allocation"] = allocation_to_dict(wire["allocation"])
    return wire


def _shard_child_main(
    conn,
    spec: DatacenterSpec,
    pods,
    shard_index: int,
    directory: Optional[str],
    options: Dict[str, Any],
) -> None:
    """Child entry point: build the shard stack, serve ops until shutdown."""
    # Stagger the deterministic every-Nth trace sampler per worker: a fresh
    # spawn always starts its counter at zero, so without a phase offset
    # every shard would sample the same startup-biased Nth calls.
    configure_obs(sample_phase=shard_index)
    # Crash/degradation flight dumps land next to the shard's journal (or
    # nowhere when the shard is memory-only — maybe_dump is then a no-op).
    if directory is not None:
        configure_flight_recorder(dump_dir=directory)
    tree = build_shard_tree(spec, pods)
    # The child works purely in shard-local ids; the parent owns the
    # global<->local translation tables, so empty maps are correct here.
    view = ShardView(
        shard_index=shard_index,
        pods=tuple(pods),
        spec=spec,
        tree=tree,
        to_global={},
        from_global={},
        core_link_ids=(),
    )
    shard = LocalShard(
        view,
        Path(directory) if directory is not None else None,
        epsilon=options.get("epsilon", 0.05),
        workers=options.get("workers", 1),
        mode=options.get("mode", "online"),
        fsync=options.get("fsync", False),
        snapshot_every=options.get("snapshot_every"),
        decision_timeout_s=options.get("decision_timeout_s", 30.0),
    )
    conn.send(
        {
            "ok": True,
            "result": {
                "event": "ready",
                "shard": shard_index,
                "slots": tree.total_slots,
            },
        }
    )
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message.get("op")
            trace = TraceContext.from_dict(message.get("trace"))
            try:
                if op == "submit":
                    decision = shard.submit(
                        request_from_dict(message["request"]),
                        idempotency_key=message.get("idem"),
                        timeout=message.get("timeout"),
                        trace=trace,
                    )
                    wire = _decision_to_wire(decision)
                    if trace is not None:
                        wire["trace_spans"] = take_remote_spans(trace.trace_id)
                    reply = {"ok": True, "result": wire}
                elif op == "adopt":
                    request_id = shard.adopt(
                        allocation_from_dict(message["allocation"]),
                        idempotency_key=message.get("idem"),
                        trace=trace,
                    )
                    if trace is not None:
                        result = {
                            "request_id": request_id,
                            "trace_spans": take_remote_spans(trace.trace_id),
                        }
                    else:
                        result = request_id
                    reply = {"ok": True, "result": result}
                elif op == "metrics":
                    reply = {"ok": True, "result": shard.metrics_snapshot()}
                elif op == "obs":
                    reply = {"ok": True, "result": shard.obs_dump()}
                elif op == "release":
                    reply = {"ok": True, "result": shard.release(message["request_id"])}
                elif op == "resize":
                    decision = shard.resize(
                        message["request_id"],
                        new_n=message.get("new_n"),
                        new_mu=message.get("new_mu"),
                        new_sigma=message.get("new_sigma"),
                        idempotency_key=message.get("idem"),
                    )
                    reply = {"ok": True, "result": _decision_to_wire(decision)}
                elif op == "stats":
                    reply = {"ok": True, "result": shard.stats()}
                elif op == "idem":
                    found = shard.idem_lookup(message["key"])
                    if found is not None:
                        found = _decision_to_wire(found)
                    reply = {"ok": True, "result": found}
                elif op == "active":
                    reply = {
                        "ok": True,
                        "result": {
                            request_id: allocation_to_dict(allocation)
                            for request_id, allocation in shard.active_allocations().items()
                        },
                    }
                elif op == "ping":
                    reply = {"ok": True, "result": "pong"}
                elif op == "shutdown":
                    conn.send({"ok": True, "result": "bye"})
                    break
                else:
                    reply = {"ok": False, "error": f"unknown op {op!r}", "code": None}
            except ServiceError as exc:
                reply = {"ok": False, "error": str(exc), "code": exc.code}
            except Exception as exc:  # noqa: BLE001 — the op fails, the shard lives
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}", "code": None}
            conn.send(reply)
    finally:
        try:
            shard.stop()
        except Exception:  # noqa: BLE001 — shutdown must not mask the exit path
            pass
        conn.close()


class ProcessShard(ShardHandle):
    """Parent-side handle over one shard child process."""

    def __init__(
        self,
        view: ShardView,
        directory: Optional[Path] = None,
        *,
        epsilon: float = 0.05,
        workers: int = 1,
        mode: str = "online",
        fsync: bool = False,
        snapshot_every: Optional[int] = None,
        decision_timeout_s: float = 30.0,
        call_timeout_s: float = 60.0,
        start_timeout_s: float = 120.0,
    ) -> None:
        self.view = view
        self.index = view.shard_index
        self.call_timeout_s = call_timeout_s
        self._lock = threading.Lock()
        context = multiprocessing.get_context("spawn")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_child_main,
            args=(
                child_conn,
                view.spec,
                view.pods,
                view.shard_index,
                str(directory) if directory is not None else None,
                {
                    "epsilon": epsilon,
                    "workers": workers,
                    "mode": mode,
                    "fsync": fsync,
                    "snapshot_every": snapshot_every,
                    "decision_timeout_s": decision_timeout_s,
                },
            ),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        if not self._conn.poll(start_timeout_s):
            self._process.kill()
            raise ServiceError(f"shard {self.index} child did not become ready")
        ready = self._conn.recv()
        if not ready.get("ok"):
            self._process.kill()
            raise ServiceError(f"shard {self.index} failed to start: {ready}")
        self.ready = ready["result"]

    # ------------------------------------------------------------------

    def _call(self, op: str, **payload: Any) -> Any:
        with self._lock:
            if not self._process.is_alive():
                raise ServiceError(f"shard {self.index} process is dead")
            self._conn.send({"op": op, **payload})
            if not self._conn.poll(self.call_timeout_s):
                raise ServiceError(f"shard {self.index} timed out on {op!r}")
            try:
                reply = self._conn.recv()
            except EOFError as exc:
                raise ServiceError(f"shard {self.index} hung up during {op!r}") from exc
        if reply.get("ok"):
            return reply.get("result")
        if reply.get("code") == CODE_CONFLICT:
            raise ConflictError(reply.get("error", "conflict"))
        raise ServiceError(reply.get("error", f"{op} failed"), code=reply.get("code"))

    # ------------------------------------------------------------------
    # ShardHandle surface
    # ------------------------------------------------------------------

    def submit(
        self,
        request,
        idempotency_key: Optional[str] = None,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        decision = self._call(
            "submit",
            request=request_to_dict(request),
            idem=idempotency_key,
            timeout=timeout,
            trace=trace.to_dict() if trace is not None else None,
        )
        if decision.get("allocation") is not None:
            decision["allocation"] = allocation_from_dict(decision["allocation"])
        if trace is not None:
            self._relay_spans(trace, decision.pop("trace_spans", []))
        return decision

    def adopt(
        self,
        allocation: Allocation,
        idempotency_key: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> int:
        result = self._call(
            "adopt",
            allocation=allocation_to_dict(allocation),
            idem=idempotency_key,
            trace=trace.to_dict() if trace is not None else None,
        )
        if isinstance(result, dict):
            if trace is not None:
                self._relay_spans(trace, result.get("trace_spans", []))
            return int(result["request_id"])
        return int(result)

    def _relay_spans(self, trace: TraceContext, spans) -> None:
        """Re-buffer child-process spans locally so the coordinator can
        collect every shard's legs with one ``take_remote_spans`` call."""
        for span in spans or []:
            span = dict(span)
            span.setdefault("shard", self.index)
            record_remote_span(trace.trace_id, span)

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self._call("metrics")

    def obs_dump(self) -> Dict[str, Any]:
        return self._call("obs")

    def release(self, request_id: int) -> bool:
        return self._call("release", request_id=request_id)

    def resize(
        self,
        request_id: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        decision = self._call(
            "resize",
            request_id=request_id,
            new_n=new_n,
            new_mu=new_mu,
            new_sigma=new_sigma,
            idem=idempotency_key,
        )
        if decision.get("allocation") is not None:
            decision["allocation"] = allocation_from_dict(decision["allocation"])
        return decision

    def stats(self) -> Dict[str, Any]:
        return self._call("stats")

    def idem_lookup(self, key: str) -> Optional[Dict[str, Any]]:
        found = self._call("idem", key=key)
        if found is not None and found.get("allocation") is not None:
            found["allocation"] = allocation_from_dict(found["allocation"])
        return found

    def active_allocations(self) -> Dict[int, Allocation]:
        return {
            int(request_id): allocation_from_dict(payload)
            for request_id, payload in self._call("active").items()
        }

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def kill(self) -> None:
        """SIGKILL the child — a real mid-flight shard death."""
        self._process.kill()
        self._process.join(timeout=10.0)
        self._conn.close()

    def stop(self) -> None:
        try:
            self._call("shutdown")
        except ServiceError:
            pass
        self._process.join(timeout=10.0)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=10.0)
        self._conn.close()

    def close(self) -> None:
        if self._process.is_alive():
            self.stop()
        else:
            try:
                self._conn.close()
            except OSError:
                pass

    def __del__(self) -> None:  # best effort — tests should close() explicitly
        try:
            if self._process.is_alive():
                self._process.kill()
        except Exception:  # noqa: BLE001
            pass


def wait_for_shards(shards, timeout_s: float = 60.0) -> None:
    """Block until every process shard answers a ping (readiness barrier)."""
    deadline = time.monotonic() + timeout_s
    for shard in shards:
        remaining = max(0.1, deadline - time.monotonic())
        saved = getattr(shard, "call_timeout_s", None)
        if saved is not None:
            shard.call_timeout_s = remaining
        try:
            if isinstance(shard, ProcessShard):
                shard._call("ping")
        finally:
            if saved is not None:
                shard.call_timeout_s = saved
