"""Advisory shard-load rebalancer: bounded routing-weight nudges.

The coordinator's locality-first routing scores shards by free capacity;
the rebalancer multiplies those scores by a per-shard weight in
``[min_weight, max_weight]``.  Weights move by at most ``step`` per update
cycle, toward relieving shards whose slot utilization (plus queue
backlog) sits above the cluster mean — **advisory and bounded**: the
rebalancer can bias where new tenants land, it can never veto an
admission, move a placed VM, or touch any admission-control math, so the
Eq. (1) guarantee is unaffected by construction.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Sequence, Tuple


class ShardLoadRebalancer:
    """Per-shard routing weights from periodic load summaries."""

    def __init__(
        self,
        num_shards: int,
        *,
        step: float = 0.1,
        min_weight: float = 0.5,
        max_weight: float = 2.0,
        imbalance_tolerance: float = 0.05,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        if not 0.0 < step <= 0.2:
            raise ValueError(f"step must be in (0, 0.2] (bounded nudges), got {step}")
        if not 0.0 < min_weight <= 1.0 <= max_weight:
            raise ValueError(
                f"weights must straddle 1.0: [{min_weight}, {max_weight}]"
            )
        self.num_shards = num_shards
        self.step = step
        self.min_weight = min_weight
        self.max_weight = max_weight
        self.imbalance_tolerance = imbalance_tolerance
        self.interval_s = interval_s
        self.clock = clock
        self._weights: List[float] = [1.0] * num_shards
        self._last_update = float("-inf")
        self.updates = 0

    def weights(self) -> Tuple[float, ...]:
        return tuple(self._weights)

    def weight_of(self, shard_index: int) -> float:
        return self._weights[shard_index]

    @staticmethod
    def _pressure(stats: Dict[str, Any]) -> float:
        """Scalar load of one shard: slot utilization + queue backlog."""
        total = max(1, int(stats.get("total_slots", 1)))
        free = max(0, int(stats.get("free_slots", 0)))
        utilization = 1.0 - free / total
        # A deep queue means demand the slot counters have not absorbed
        # yet; one queued request per 1% of capacity saturates the term.
        backlog = min(1.0, int(stats.get("queue_depth", 0)) / max(1.0, total / 100.0))
        return utilization + 0.25 * backlog

    def maybe_update(self, stats: Sequence[Dict[str, Any]]) -> bool:
        """Rate-limited :meth:`update`; True when an update ran."""
        now = self.clock()
        if now - self._last_update < self.interval_s:
            return False
        self._last_update = now
        self.update(stats)
        return True

    def update(self, stats: Sequence[Dict[str, Any]]) -> Tuple[float, ...]:
        """One bounded adjustment toward the cluster-mean pressure."""
        if len(stats) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} shard summaries, got {len(stats)}"
            )
        pressures = [self._pressure(row) for row in stats]
        mean = sum(pressures) / len(pressures)
        for index, pressure in enumerate(pressures):
            if pressure > mean + self.imbalance_tolerance:
                self._weights[index] -= self.step
            elif pressure < mean - self.imbalance_tolerance:
                self._weights[index] += self.step
            else:
                # Drift back toward neutral so old corrections decay.
                if self._weights[index] > 1.0:
                    self._weights[index] = max(1.0, self._weights[index] - self.step)
                elif self._weights[index] < 1.0:
                    self._weights[index] = min(1.0, self._weights[index] + self.step)
            self._weights[index] = min(
                self.max_weight, max(self.min_weight, self._weights[index])
            )
        self.updates += 1
        return self.weights()

    def describe(self) -> Dict[str, Any]:
        return {
            "weights": list(self._weights),
            "step": self.step,
            "updates": self.updates,
            "bounds": [self.min_weight, self.max_weight],
        }
