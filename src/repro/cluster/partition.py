"""Topology partitioner: split the three-level tree by aggregation subtree.

Each shard owns a contiguous block of pods (aggregation subtrees).  A shard's
view of the datacenter is a *tree of its own* — a replica core switch with
only the owned pods below it — built in the exact construction order of
:func:`repro.topology.builder.build_datacenter`, so a single-shard partition
produces a tree that is node-for-node **id-identical** to the global one.
That identity is what makes the single-shard cluster path bit-compatible
with the direct ``AdmissionService`` path (the sharded-equivalence test).

Node correspondence between a shard tree and the global tree is established
by *name* (names are unique: ``core``, ``agg{p}``, ``tor{p}.{r}``,
``m{p}.{r}.{m}``), never by id arithmetic, so it survives any future change
to the id assignment order.

The **core links** — the aggregation uplinks, link id == agg node id — are
the only links shared with the rest of the datacenter.  Each core link hangs
under exactly one pod and therefore belongs to exactly one shard, but its
*capacity* is a datacenter-wide resource: cross-shard placements load core
links of several shards at once, which is why the coordinator accounts for
them on a shared ledger (:mod:`repro.cluster.ledger`) instead of trusting
any single shard's view.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.allocation.base import Allocation
from repro.topology.builder import DatacenterSpec, build_datacenter
from repro.topology.tree import Tree


def build_shard_tree(spec: DatacenterSpec, pods: Sequence[int]) -> Tree:
    """A shard's view: replica core + the owned pods, in builder order.

    The loop body mirrors :func:`build_datacenter` exactly (same names, same
    attach order); with ``pods == range(spec.pods)`` the result is
    id-identical to the global tree.
    """
    if not pods:
        raise ValueError("a shard must own at least one pod")
    tree = Tree()
    core = tree.add_switch("core", level=3)
    for pod in pods:
        if not 0 <= pod < spec.pods:
            raise ValueError(f"pod {pod} outside spec range 0..{spec.pods - 1}")
        agg = tree.add_switch(f"agg{pod}", level=2)
        tree.attach(agg, core, spec.agg_uplink_mbps)
        for rack in range(spec.racks_per_pod):
            tor = tree.add_switch(f"tor{pod}.{rack}", level=1)
            tree.attach(tor, agg, spec.tor_uplink_mbps)
            for machine in range(spec.machines_per_rack):
                node = tree.add_machine(
                    f"m{pod}.{rack}.{machine}", slot_capacity=spec.slots_per_machine
                )
                tree.attach(node, tor, spec.machine_link_mbps)
    return tree.freeze()


@dataclass(frozen=True)
class ShardView:
    """One shard's slice of the datacenter plus its id translation tables."""

    shard_index: int
    pods: Tuple[int, ...]
    spec: DatacenterSpec
    tree: Tree
    #: local node id -> global node id (link ids translate identically,
    #: because a link id *is* its child node id).
    to_global: Mapping[int, int]
    #: global node id -> local node id (only nodes this shard owns + core).
    from_global: Mapping[int, int]
    #: Global link ids of the owned aggregation uplinks (the core links).
    core_link_ids: Tuple[int, ...]

    @property
    def total_slots(self) -> int:
        return self.tree.total_slots

    def owns_global_node(self, global_node_id: int) -> bool:
        return global_node_id in self.from_global

    def allocation_to_global(
        self, allocation: Allocation, request_id: Optional[int] = None
    ) -> Allocation:
        """Translate a shard-local allocation into global node/link ids."""
        return self._translate(allocation, self.to_global, request_id)

    def allocation_to_local(
        self, allocation: Allocation, request_id: Optional[int] = None
    ) -> Allocation:
        """Translate a global-id allocation (fully inside this shard) back."""
        return self._translate(allocation, self.from_global, request_id)

    @staticmethod
    def _translate(
        allocation: Allocation, mapping: Mapping[int, int], request_id: Optional[int]
    ) -> Allocation:
        machine_vms = None
        if allocation.machine_vms is not None:
            machine_vms = {
                mapping[machine_id]: vms
                for machine_id, vms in allocation.machine_vms.items()
            }
        return dataclasses.replace(
            allocation,
            request_id=allocation.request_id if request_id is None else request_id,
            host_node=mapping[allocation.host_node],
            machine_counts={
                mapping[machine_id]: count
                for machine_id, count in allocation.machine_counts.items()
            },
            link_demands={
                mapping[link_id]: demand
                for link_id, demand in allocation.link_demands.items()
            },
            machine_vms=machine_vms,
        )


def _pod_blocks(num_pods: int, num_shards: int) -> Tuple[Tuple[int, ...], ...]:
    """Balanced contiguous pod blocks: sizes differ by at most one."""
    base, extra = divmod(num_pods, num_shards)
    blocks = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        blocks.append(tuple(range(start, start + size)))
        start += size
    return tuple(blocks)


@dataclass(frozen=True)
class ClusterPartition:
    """The global tree plus K non-overlapping shard views that tile it.

    Invariant (checked at build time): every machine, ToR and aggregation
    node of the global tree appears in exactly one shard view; only the
    core switch is replicated into every shard.
    """

    spec: DatacenterSpec
    num_shards: int
    tree: Tree
    shards: Tuple[ShardView, ...]
    #: global pod index -> shard index.
    pod_to_shard: Mapping[int, int]
    #: global node id (below core) -> shard index.
    node_to_shard: Mapping[int, int]

    @classmethod
    def build(
        cls, spec: DatacenterSpec, num_shards: int, tree: Optional[Tree] = None
    ) -> "ClusterPartition":
        if not 1 <= num_shards <= spec.pods:
            raise ValueError(
                f"num_shards must be in 1..{spec.pods} (one pod per shard at "
                f"most), got {num_shards}"
            )
        global_tree = tree if tree is not None else build_datacenter(spec)
        by_name: Dict[str, int] = {
            node.name: node.node_id for node in global_tree.nodes
        }
        if len(by_name) != global_tree.num_nodes:
            raise ValueError("global tree has duplicate node names")

        shards = []
        pod_to_shard: Dict[int, int] = {}
        node_to_shard: Dict[int, int] = {}
        for shard_index, pods in enumerate(_pod_blocks(spec.pods, num_shards)):
            shard_tree = build_shard_tree(spec, pods)
            to_global: Dict[int, int] = {}
            from_global: Dict[int, int] = {}
            for node in shard_tree.nodes:
                global_id = by_name.get(node.name)
                if global_id is None:
                    raise ValueError(
                        f"shard node {node.name!r} missing from the global tree"
                    )
                to_global[node.node_id] = global_id
                from_global[global_id] = node.node_id
                if node.name != "core":
                    node_to_shard[global_id] = shard_index
            core_links = tuple(by_name[f"agg{pod}"] for pod in pods)
            shards.append(
                ShardView(
                    shard_index=shard_index,
                    pods=pods,
                    spec=spec,
                    tree=shard_tree,
                    to_global=to_global,
                    from_global=from_global,
                    core_link_ids=core_links,
                )
            )
            for pod in pods:
                pod_to_shard[pod] = shard_index

        # Tiling check: every non-core global node is owned exactly once.
        expected = global_tree.num_nodes - 1
        if len(node_to_shard) != expected:
            raise ValueError(
                f"partition covers {len(node_to_shard)} nodes, expected {expected}"
            )
        return cls(
            spec=spec,
            num_shards=num_shards,
            tree=global_tree,
            shards=tuple(shards),
            pod_to_shard=pod_to_shard,
            node_to_shard=node_to_shard,
        )

    @property
    def core_link_ids(self) -> Tuple[int, ...]:
        """All core links (global agg-uplink ids), in shard then pod order."""
        ids = []
        for shard in self.shards:
            ids.extend(shard.core_link_ids)
        return tuple(ids)

    def shard_of_node(self, global_node_id: int) -> Optional[int]:
        """Owning shard of a global node; None for the core switch."""
        return self.node_to_shard.get(global_node_id)

    def shards_touched(self, allocation: Allocation) -> Tuple[int, ...]:
        """Sorted shard indices hosting at least one VM of an allocation."""
        touched = {
            self.node_to_shard[machine_id]
            for machine_id in allocation.machine_counts
        }
        return tuple(sorted(touched))

    def describe(self) -> str:
        sizes = ", ".join(
            f"s{shard.shard_index}:{len(shard.pods)}p/{shard.total_slots}slots"
            for shard in self.shards
        )
        return (
            f"ClusterPartition(pods={self.spec.pods}, shards={self.num_shards}, "
            f"core_links={len(self.core_link_ids)}, [{sizes}])"
        )
