"""Shared core-link ledger: datacenter-wide Eq. (6) accounting above the shards.

Core links (aggregation uplinks) are each *owned* by one shard — that
shard's ``NetworkState`` carries their committed load — but their capacity
is consumed by cross-shard placements that no single shard can see in full.
The ledger is the coordinator's authoritative, global view of every core
link: committed demand footprints keyed by global request id, plus TTL'd
**reservations** taken during the first phase of the two-phase protocol.

Occupancy follows Eq. (6) exactly::

    O_L = (D_L + sum(mu_i) + c * sqrt(sum(sigma_i^2))) / C_L

with reservations included, so a reservation holds effective bandwidth
``E^L_i`` against concurrent admissions until it is committed, aborted, or
its TTL lapses.  Every transition (reserve/commit/abort/release) is keyed by
the global request id and **idempotent**, so coordinator retries after a
crash can replay any step without double-counting — the Eq. (1) outage
bound is never violated by a leak or a duplicate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.stochastic.aggregate import risk_quantile
from repro.stochastic.normal import Normal
from repro.topology.tree import Tree


class LedgerError(RuntimeError):
    """An impossible ledger transition (commit of an unknown reservation)."""


@dataclass(frozen=True)
class CoreDemand:
    """One request's demand footprint on one core link."""

    mean: float = 0.0
    variance: float = 0.0
    deterministic: float = 0.0

    @classmethod
    def from_normal(cls, demand: Normal, deterministic: bool) -> "CoreDemand":
        if deterministic:
            return cls(deterministic=demand.mean)
        return cls(mean=demand.mean, variance=demand.variance)

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "variance": self.variance,
            "deterministic": self.deterministic,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "CoreDemand":
        return cls(
            mean=float(payload.get("mean", 0.0)),
            variance=float(payload.get("variance", 0.0)),
            deterministic=float(payload.get("deterministic", 0.0)),
        )


def core_demands_of(
    allocation, core_link_ids: Iterable[int]
) -> Dict[int, CoreDemand]:
    """Extract an allocation's core-link footprint (global link ids)."""
    core = set(core_link_ids)
    demands: Dict[int, CoreDemand] = {}
    for link_id, demand in allocation.link_demands.items():
        if link_id in core:
            demands[link_id] = CoreDemand.from_normal(
                demand, allocation.deterministic
            )
    return demands


class _LinkAccount:
    """Running Eq. (6) sums for one core link."""

    __slots__ = (
        "capacity",
        "committed_mean",
        "committed_var",
        "committed_det",
        "reserved_mean",
        "reserved_var",
        "reserved_det",
    )

    def __init__(self, capacity: float) -> None:
        self.capacity = capacity
        self.committed_mean = 0.0
        self.committed_var = 0.0
        self.committed_det = 0.0
        self.reserved_mean = 0.0
        self.reserved_var = 0.0
        self.reserved_det = 0.0

    def add(self, demand: CoreDemand, reserved: bool) -> None:
        if reserved:
            self.reserved_mean += demand.mean
            self.reserved_var += demand.variance
            self.reserved_det += demand.deterministic
        else:
            self.committed_mean += demand.mean
            self.committed_var += demand.variance
            self.committed_det += demand.deterministic

    def remove(self, demand: CoreDemand, reserved: bool) -> None:
        if reserved:
            self.reserved_mean -= demand.mean
            self.reserved_var -= demand.variance
            self.reserved_det -= demand.deterministic
            if self.reserved_var < 0.0:
                self.reserved_var = 0.0
        else:
            self.committed_mean -= demand.mean
            self.committed_var -= demand.variance
            self.committed_det -= demand.deterministic
            if self.committed_var < 0.0:
                self.committed_var = 0.0

    def zero_if_empty(self, committed_empty: bool, reserved_empty: bool) -> None:
        # Same float-residue hygiene as LinkState.remove_request: an empty
        # account must report exactly zero effective bandwidth.
        if committed_empty:
            self.committed_mean = self.committed_var = self.committed_det = 0.0
        if reserved_empty:
            self.reserved_mean = self.reserved_var = self.reserved_det = 0.0

    def occupancy(
        self, risk_c: float, extra: Optional[CoreDemand] = None
    ) -> float:
        mean = self.committed_mean + self.reserved_mean
        var = self.committed_var + self.reserved_var
        det = self.committed_det + self.reserved_det
        if extra is not None:
            mean += extra.mean
            var += extra.variance
            det += extra.deterministic
        if var < 0.0:
            var = 0.0
        return (det + mean + risk_c * math.sqrt(var)) / self.capacity


class CoreLinkLedger:
    """Reserve/commit/abort accounting over the shared core links.

    Not thread-safe by itself: the coordinator performs every call while
    holding its own lock (same single-owner discipline as
    :class:`repro.service.queue.RequestQueue`).
    """

    def __init__(
        self,
        tree: Tree,
        core_link_ids: Iterable[int],
        epsilon: float = 0.05,
        reserve_ttl_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if reserve_ttl_s <= 0.0:
            raise ValueError(f"reserve TTL must be > 0, got {reserve_ttl_s}")
        self.epsilon = epsilon
        self.risk_c = risk_quantile(epsilon)
        self.reserve_ttl_s = reserve_ttl_s
        self.clock = clock
        self._links: Dict[int, _LinkAccount] = {
            link_id: _LinkAccount(tree.link(link_id).capacity)
            for link_id in core_link_ids
        }
        #: global request id -> {link id -> demand} (committed tenants).
        self._committed: Dict[int, Dict[int, CoreDemand]] = {}
        #: global request id -> ({link id -> demand}, expires_at).
        self._reserved: Dict[int, Tuple[Dict[int, CoreDemand], float]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def link_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._links))

    @property
    def pending_reservations(self) -> int:
        return len(self._reserved)

    @property
    def committed_requests(self) -> Tuple[int, ...]:
        return tuple(sorted(self._committed))

    def is_committed(self, request_id: int) -> bool:
        return request_id in self._committed

    def is_reserved(self, request_id: int) -> bool:
        return request_id in self._reserved

    def occupancy_of(self, link_id: int) -> float:
        """Ledger-side ``O_L`` of one core link, reservations included."""
        return self._links[link_id].occupancy(self.risk_c)

    def occupancies(self) -> Dict[int, float]:
        return {
            link_id: account.occupancy(self.risk_c)
            for link_id, account in self._links.items()
        }

    def max_occupancy(self) -> float:
        worst = 0.0
        for account in self._links.values():
            value = account.occupancy(self.risk_c)
            if value > worst:
                worst = value
        return worst

    def would_fit(self, demands: Mapping[int, CoreDemand]) -> bool:
        """Eq. (4) validity if the demands were added: all ``O_L < 1``."""
        for link_id, demand in demands.items():
            if self._links[link_id].occupancy(self.risk_c, demand) >= 1.0:
                return False
        return True

    def committed_totals(self) -> Dict[int, Dict[str, float]]:
        """Per-link committed sums — what the referee reconciles with shards."""
        return {
            link_id: {
                "mean": account.committed_mean,
                "variance": account.committed_var,
                "deterministic": account.committed_det,
            }
            for link_id, account in self._links.items()
        }

    def entry_of(self, request_id: int) -> Optional[Dict[int, CoreDemand]]:
        """The committed footprint of one request, or None."""
        return self._committed.get(request_id)

    # ------------------------------------------------------------------
    # Two-phase transitions (all idempotent, keyed by global request id)
    # ------------------------------------------------------------------

    def expire(self, now: Optional[float] = None) -> List[int]:
        """Drop reservations whose TTL lapsed; returns the expired ids."""
        now = self.clock() if now is None else now
        expired = [
            request_id
            for request_id, (_demands, expires_at) in self._reserved.items()
            if now >= expires_at
        ]
        for request_id in expired:
            self._drop_reserved(request_id)
        return expired

    def reserve(
        self,
        request_id: int,
        demands: Mapping[int, CoreDemand],
        ttl_s: Optional[float] = None,
    ) -> bool:
        """Phase 1: hold effective bandwidth on the core links, with a TTL.

        Returns False when any link would reach ``O_L >= 1`` — the request
        must be rejected (or retried later), nothing is held.  Re-reserving
        an id that is already reserved or committed succeeds without adding
        a second footprint (retry idempotency).
        """
        self.expire()
        if request_id in self._committed or request_id in self._reserved:
            return True
        unknown = [link_id for link_id in demands if link_id not in self._links]
        if unknown:
            raise LedgerError(f"unknown core links {sorted(unknown)}")
        if not self.would_fit(demands):
            return False
        ttl = self.reserve_ttl_s if ttl_s is None else ttl_s
        held = dict(demands)
        for link_id, demand in held.items():
            self._links[link_id].add(demand, reserved=True)
        self._reserved[request_id] = (held, self.clock() + ttl)
        return True

    def commit(self, request_id: int) -> None:
        """Phase 2 (success): move a reservation into the committed set."""
        if request_id in self._committed:
            return
        entry = self._reserved.pop(request_id, None)
        if entry is None:
            raise LedgerError(
                f"commit of request {request_id} without a live reservation"
            )
        demands, _expires_at = entry
        for link_id, demand in demands.items():
            account = self._links[link_id]
            account.remove(demand, reserved=True)
            account.add(demand, reserved=False)
        self._committed[request_id] = demands
        self._tidy()

    def commit_direct(
        self, request_id: int, demands: Mapping[int, CoreDemand]
    ) -> None:
        """Mirror a shard-serialized admission straight into the committed set.

        Single-shard admissions that touch their own core links are already
        guarded by the owning shard's serialized admission path, so they
        skip the reserve phase; the ledger only needs the committed entry to
        stay the global source of truth.  Idempotent per request id.
        """
        if request_id in self._committed:
            return
        self._drop_reserved(request_id)
        held = dict(demands)
        for link_id, demand in held.items():
            if link_id not in self._links:
                raise LedgerError(f"unknown core link {link_id}")
            self._links[link_id].add(demand, reserved=False)
        self._committed[request_id] = held

    def abort(self, request_id: int) -> bool:
        """Phase 2 (failure): release a reservation. True if one was held."""
        return self._drop_reserved(request_id)

    def release(self, request_id: int) -> bool:
        """Tenant departure: drop the committed footprint. Idempotent."""
        demands = self._committed.pop(request_id, None)
        if demands is None:
            return False
        for link_id, demand in demands.items():
            self._links[link_id].remove(demand, reserved=False)
        self._tidy()
        return True

    # ------------------------------------------------------------------

    def _drop_reserved(self, request_id: int) -> bool:
        entry = self._reserved.pop(request_id, None)
        if entry is None:
            return False
        demands, _expires_at = entry
        for link_id, demand in demands.items():
            self._links[link_id].remove(demand, reserved=True)
        self._tidy()
        return True

    def _tidy(self) -> None:
        committed_links = set()
        for demands in self._committed.values():
            committed_links.update(demands)
        reserved_links = set()
        for demands, _expires_at in self._reserved.values():
            reserved_links.update(demands)
        for link_id, account in self._links.items():
            account.zero_if_empty(
                link_id not in committed_links, link_id not in reserved_links
            )
