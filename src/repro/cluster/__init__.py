"""Sharded multi-worker admission over a partitioned datacenter tree.

The paper's evaluation stops at one tree behind one allocator; this package
scales admission horizontally (ROADMAP open item 2).  The three-level tree
is split **by aggregation subtree** into K shard views
(:mod:`repro.cluster.partition`); each shard runs the existing
``AdmissionService`` + WAL/recovery stack unchanged over its subtree
(:mod:`repro.cluster.shard`, :mod:`repro.cluster.worker`); a coordinator
(:mod:`repro.cluster.coordinator`) routes requests placement-locality-first
to a single shard and admits cross-shard placements through a two-phase
reserve/commit protocol on the shared core-link ledger
(:mod:`repro.cluster.ledger`), so the Eq. (1) outage bound composes across
shards without double-counting or leaks.
"""

from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
from repro.cluster.ledger import CoreLinkLedger, LedgerError
from repro.cluster.partition import ClusterPartition, ShardView, build_shard_tree
from repro.cluster.rebalance import ShardLoadRebalancer
from repro.cluster.shard import LocalShard, ShardAdoptError, ShardHandle
from repro.cluster.worker import ProcessShard

__all__ = [
    "ClusterCoordinator",
    "CoordinatorError",
    "CoreLinkLedger",
    "LedgerError",
    "ClusterPartition",
    "ShardView",
    "build_shard_tree",
    "ShardLoadRebalancer",
    "LocalShard",
    "ShardAdoptError",
    "ShardHandle",
    "ProcessShard",
]
