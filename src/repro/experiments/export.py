"""Exporting experiment results to CSV and Markdown.

The harness prints aligned text tables; downstream plotting wants machine-
readable files.  ``export_csv``/``export_markdown`` write one file per table
into a directory, named ``<experiment>__<slug-of-title>.<ext>``.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Iterable, List

from repro.experiments.tables import ExperimentResult, Table


def _slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug[:80] or "table"


def export_csv(result: ExperimentResult, directory) -> List[Path]:
    """Write each table of a result as CSV; returns the written paths.

    Distinct tables whose titles slugify to the same stem (long titles
    truncate at 80 characters; punctuation-only differences collapse) get
    ``-2``, ``-3``, ... suffixes instead of silently overwriting each other,
    so the returned list always has one live file per table.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    used_stems = set()
    for table in result.tables:
        stem = f"{result.experiment}__{_slugify(table.title)}"
        candidate = stem
        suffix = 1
        while candidate in used_stems:
            suffix += 1
            candidate = f"{stem}-{suffix}"
        used_stems.add(candidate)
        path = directory / f"{candidate}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.headers)
            writer.writerows(table.rows)
        written.append(path)
    return written


def table_to_markdown(table: Table) -> str:
    """One table as GitHub-flavoured Markdown."""
    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(str(h) for h in table.headers) + " |")
    lines.append("|" + "|".join("---" for _ in table.headers) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(Table._render(cell) for cell in row) + " |")
    return "\n".join(lines)


def export_markdown(results: Iterable[ExperimentResult], path) -> Path:
    """Write all results into one Markdown report."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sections = []
    for result in results:
        sections.append(f"## {result.experiment}")
        for table in result.tables:
            sections.append(table_to_markdown(table))
    path.write_text("\n\n".join(sections) + "\n")
    return path
