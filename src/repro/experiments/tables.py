"""Plain-text result tables, in the spirit of the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class Table:
    """A titled grid of results with one header row.

    Cells may be numbers or strings; :meth:`format` right-aligns numeric
    columns and renders floats compactly.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    @staticmethod
    def _render(cell: Any) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if abs(cell) >= 1000:
                return f"{cell:.3g}"
            return f"{cell:.3f}".rstrip("0").rstrip(".") or "0"
        return str(cell)

    def format(self) -> str:
        rendered = [[self._render(cell) for cell in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in rendered:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def column(self, header: str) -> List[Any]:
        """All cells of one column (for assertions in tests)."""
        idx = list(self.headers).index(header)
        return [row[idx] for row in self.rows]

    def row_by_label(self, label: str) -> Sequence[Any]:
        """The row whose first cell equals ``label``."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(f"no row labelled {label!r} in table {self.title!r}")


@dataclass
class ExperimentResult:
    """One experiment's tables plus the raw data behind them.

    ``notes`` carries preformatted text blocks (e.g. ASCII CDF plots) that
    :meth:`format` appends after the tables.
    """

    experiment: str
    tables: List[Table]
    raw: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        blocks = [table.format() for table in self.tables]
        blocks.extend(self.notes)
        return "\n\n".join(blocks)
