"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.allocation.base import Allocator
from repro.experiments.config import ExperimentScale, scale_by_name
from repro.simulation.jobs import JobSpec
from repro.simulation.workload import assign_poisson_arrivals, generate_jobs


@dataclass(frozen=True)
class ModelVariant:
    """One curve of a figure: an abstraction + risk factor (+ allocator)."""

    label: str
    model: str
    epsilon: float = 0.05
    allocator_factory: Optional[Callable[[], Allocator]] = None

    def make_allocator(self) -> Optional[Allocator]:
        return self.allocator_factory() if self.allocator_factory else None


def standard_variants(epsilons: Sequence[float] = (0.05, 0.02)) -> List[ModelVariant]:
    """The four curves of Figs. 5-7: mean-VC, percentile-VC, SVC per epsilon."""
    variants = [
        ModelVariant("mean-VC", "mean-vc"),
        ModelVariant("percentile-VC", "percentile-vc"),
    ]
    for epsilon in epsilons:
        variants.append(ModelVariant(f"SVC(eps={epsilon:g})", "svc", epsilon=epsilon))
    return variants


def resolve_scale(scale) -> ExperimentScale:
    """Accept either a scale name or an :class:`ExperimentScale`."""
    if isinstance(scale, ExperimentScale):
        return scale
    return scale_by_name(scale)


def batch_workload(
    scale: ExperimentScale, seed: int, **overrides
) -> List[JobSpec]:
    """The shared job batch for one (scale, seed): all models see it verbatim."""
    config = scale.workload(**overrides)
    return generate_jobs(config, np.random.default_rng(seed))


def online_workload(
    scale: ExperimentScale,
    seed: int,
    load: float,
    total_slots: int,
    **overrides,
) -> List[JobSpec]:
    """A Poisson-stamped arrival sequence at the given datacenter load."""
    config = scale.workload(**overrides)
    specs = generate_jobs(config, np.random.default_rng(seed))
    return assign_poisson_arrivals(
        specs,
        load=load,
        total_slots=total_slots,
        mean_job_size=config.mean_job_size,
        mean_compute_time=config.mean_compute_time,
        rng=np.random.default_rng(seed + 1),
    )


def simulation_rng(seed: int) -> np.random.Generator:
    """The data-plane RNG, decoupled from the workload RNG."""
    return np.random.default_rng(seed + 10_000)
