"""Shared plumbing for the experiment modules.

Randomness discipline
---------------------
Every random stream an experiment consumes is a **named child** of the trial
seed, derived through :class:`numpy.random.SeedSequence` spawning.  The
streams (``workload``, ``arrivals``, ``simulation``) are pairwise independent
for one seed *and* across seeds — unlike the additive ``seed + k``
derivations this replaced, where trial ``s``'s arrival stream was bit-equal
to trial ``s + 1``'s workload stream and any trial seed >= 10,000 collided
with a data-plane stream.

``run_all`` additionally decorrelates the *experiments* from each other:
each experiment runs at :func:`experiment_seed`, a child of the base seed
keyed by the experiment's name (stable across insertion order), so no two
experiments draw byte-identical job batches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.allocation.base import Allocator
from repro.experiments.config import ExperimentScale, scale_by_name
from repro.simulation.jobs import JobSpec
from repro.simulation.workload import assign_poisson_arrivals, generate_jobs

#: The named random streams of one (experiment, seed) trial, in spawn order.
STREAMS = ("workload", "arrivals", "simulation")


@dataclass(frozen=True)
class ModelVariant:
    """One curve of a figure: an abstraction + risk factor (+ allocator)."""

    label: str
    model: str
    epsilon: float = 0.05
    allocator_factory: Optional[Callable[[], Allocator]] = None

    def make_allocator(self) -> Optional[Allocator]:
        return self.allocator_factory() if self.allocator_factory else None


def standard_variants(epsilons: Sequence[float] = (0.05, 0.02)) -> List[ModelVariant]:
    """The four curves of Figs. 5-7: mean-VC, percentile-VC, SVC per epsilon."""
    variants = [
        ModelVariant("mean-VC", "mean-vc"),
        ModelVariant("percentile-VC", "percentile-vc"),
    ]
    for epsilon in epsilons:
        variants.append(ModelVariant(f"SVC(eps={epsilon:g})", "svc", epsilon=epsilon))
    return variants


def resolve_scale(scale) -> ExperimentScale:
    """Accept either a scale name or an :class:`ExperimentScale`."""
    if isinstance(scale, ExperimentScale):
        return scale
    return scale_by_name(scale)


def stream_rng(seed: int, stream: str) -> np.random.Generator:
    """The named child generator of one trial seed.

    All streams of one seed are spawned from the same root
    ``SeedSequence(seed)``, so they are mutually independent and distinct
    from every stream of every other seed.
    """
    try:
        index = STREAMS.index(stream)
    except ValueError:
        raise ValueError(
            f"unknown random stream {stream!r}; choose from {STREAMS}"
        ) from None
    child = np.random.SeedSequence(seed).spawn(len(STREAMS))[index]
    return np.random.default_rng(child)


def experiment_seed(seed: int, experiment: str) -> int:
    """A per-experiment child of the base seed, keyed by the experiment name.

    Stable across run orderings and Python hash randomization (the name is
    folded in through BLAKE2, not ``hash()``).  ``run_all`` forwards this to
    each experiment so their workloads are decorrelated instead of all
    replaying the identical job batch.
    """
    digest = hashlib.blake2b(experiment.encode("utf-8"), digest_size=8).digest()
    child = np.random.SeedSequence((int(seed), int.from_bytes(digest, "big")))
    return int(child.generate_state(1, np.uint64)[0])


def batch_workload(
    scale: ExperimentScale, seed: int, **overrides
) -> List[JobSpec]:
    """The shared job batch for one (scale, seed): all models see it verbatim."""
    config = scale.workload(**overrides)
    return generate_jobs(config, stream_rng(seed, "workload"))


def online_workload(
    scale: ExperimentScale,
    seed: int,
    load: float,
    total_slots: int,
    **overrides,
) -> List[JobSpec]:
    """A Poisson-stamped arrival sequence at the given datacenter load."""
    config = scale.workload(**overrides)
    specs = generate_jobs(config, stream_rng(seed, "workload"))
    return assign_poisson_arrivals(
        specs,
        load=load,
        total_slots=total_slots,
        mean_job_size=config.mean_job_size,
        mean_compute_time=config.mean_compute_time,
        rng=stream_rng(seed, "arrivals"),
    )


def simulation_rng(seed: int) -> np.random.Generator:
    """The data-plane RNG, decoupled from the workload and arrival RNGs."""
    return stream_rng(seed, "simulation")
