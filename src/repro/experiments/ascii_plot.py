"""Terminal rendering of empirical CDFs (the Fig. 9 curves, in ASCII).

The harness is plotting-library-free by design (offline reproduction); this
module draws empirical CDFs as a character grid so the *shape* of a figure —
which curve sits left of which — is visible straight from the CLI.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_MARKERS = "ox+*#@"


def render_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "value",
) -> str:
    """Draw the empirical CDFs of up to six labelled sample sets.

    The x-axis spans the pooled sample range; the y-axis is cumulative
    probability 0..1.  Each series gets a marker from ``o x + * # @``.
    """
    if not series:
        raise ValueError("at least one series is required")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    pooled = np.concatenate([np.asarray(values, dtype=float) for values in series.values()])
    if pooled.size == 0:
        raise ValueError("series contain no samples")
    lo, hi = float(pooled.min()), float(pooled.max())
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, values) in zip(_MARKERS, series.items()):
        data = np.sort(np.asarray(values, dtype=float))
        if data.size == 0:
            continue
        for column in range(width):
            x = lo + (hi - lo) * (column + 0.5) / width
            probability = float(np.searchsorted(data, x, side="right")) / data.size
            row = min(height - 1, int((1.0 - probability) * (height - 1) + 0.5))
            if grid[row][column] == " ":
                grid[row][column] = marker

    lines = []
    for index, row in enumerate(grid):
        probability = 1.0 - index / (height - 1)
        lines.append(f"{probability:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    span = f"{lo:.3f}{' ' * max(1, width - len(f'{lo:.3f}') - len(f'{hi:.3f}'))}{hi:.3f}"
    lines.append("      " + span)
    legend = "   ".join(
        f"{marker} {label}" for marker, label in zip(_MARKERS, series.keys())
    )
    lines.append(f"      [{x_label}]   {legend}")
    return "\n".join(lines)
