"""Fig. 6 — average running time per job vs. the deviation coefficient.

The deviation coefficient ``rho`` scales the demand uncertainty
(``sigma_d = rho * mu_d``).  Paper shape: percentile-VC is flat and lowest
(it reserves the 95th percentile, so bursts never queue); mean-VC grows and
is highest (bursts exceed its fixed reservation and stretch flows); SVC sits
in between, and a smaller risk factor ``epsilon`` pushes it closer to
percentile-VC.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    batch_workload,
    resolve_scale,
    simulation_rng,
    standard_variants,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_batch
from repro.topology.builder import build_datacenter

DEFAULT_DEVIATIONS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run(
    scale="small",
    seed: int = 0,
    deviations: Sequence[float] = DEFAULT_DEVIATIONS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> ExperimentResult:
    """Reproduce Fig. 6 at the given scale."""
    scale = resolve_scale(scale)
    variants = standard_variants(epsilons)
    tree = build_datacenter(scale.spec)

    table = Table(
        title=f"Fig. 6 — average running time per job (s) vs deviation coefficient [{scale.name}]",
        headers=["model"] + [f"rho={rho:g}" for rho in deviations],
    )
    raw = {}
    for variant in variants:
        cells = []
        for rho in deviations:
            specs = batch_workload(scale, seed, deviation=rho)
            result = run_batch(
                tree,
                specs,
                model=variant.model,
                epsilon=variant.epsilon,
                rng=simulation_rng(seed),
            )
            cells.append(result.average_running_time)
            raw[(variant.label, rho)] = result
        table.add_row(variant.label, *cells)
    return ExperimentResult(experiment="fig6", tables=[table], raw=raw)
