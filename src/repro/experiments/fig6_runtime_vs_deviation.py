"""Fig. 6 — average running time per job vs. the deviation coefficient.

The deviation coefficient ``rho`` scales the demand uncertainty
(``sigma_d = rho * mu_d``).  Paper shape: percentile-VC is flat and lowest
(it reserves the 95th percentile, so bursts never queue); mean-VC grows and
is highest (bursts exceed its fixed reservation and stretch flows); SVC sits
in between, and a smaller risk factor ``epsilon`` pushes it closer to
percentile-VC.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import (
    batch_workload,
    resolve_scale,
    simulation_rng,
    standard_variants,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_batch
from repro.topology.builder import build_datacenter

DEFAULT_DEVIATIONS = (0.1, 0.3, 0.5, 0.7, 0.9)

EXPERIMENT = "fig6"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    deviations: Sequence[float] = DEFAULT_DEVIATIONS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> List[Cell]:
    """One cell per (model variant, deviation coefficient)."""
    scale = resolve_scale(scale)
    cells = []
    for variant in standard_variants(epsilons):
        for rho in deviations:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{variant.label}/rho={rho:g}",
                    scale=scale.name,
                    seed=seed,
                    params={
                        "label": variant.label,
                        "model": variant.model,
                        "epsilon": float(variant.epsilon),
                        "rho": float(rho),
                    },
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one variant's batch at one fixed deviation coefficient."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    specs = batch_workload(scale, cell.seed, deviation=params["rho"])
    tree = build_datacenter(scale.spec)
    result = run_batch(
        tree,
        specs,
        model=params["model"],
        epsilon=params["epsilon"],
        rng=simulation_rng(cell.seed),
    )
    return CellOutcome(
        payload={"average_running_time": float(result.average_running_time)},
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the Fig. 6 table."""
    deviations = ordered_unique(cell.params["rho"] for cell in cells)
    table = Table(
        title=(
            "Fig. 6 — average running time per job (s) vs deviation coefficient "
            f"[{cells[0].scale}]"
        ),
        headers=["model"] + [f"rho={rho:g}" for rho in deviations],
    )
    raw = {}
    for label in ordered_unique(cell.params["label"] for cell in cells):
        values = []
        for cell in cells:
            if cell.params["label"] != label:
                continue
            outcome = outcomes[cell.key]
            values.append(outcome.payload["average_running_time"])
            raw[(label, cell.params["rho"])] = outcome.result
        table.add_row(label, *values)
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    deviations: Sequence[float] = DEFAULT_DEVIATIONS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> ExperimentResult:
    """Reproduce Fig. 6 at the given scale."""
    cells = enumerate_cells(
        scale=scale, seed=seed, deviations=deviations, epsilons=epsilons
    )
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
