"""Fig. 5 — total completion time of a job batch vs. network oversubscription.

The paper batches 500 jobs in a FIFO queue and reports the completion time of
the whole batch while sweeping the physical oversubscription factor.  Paper
shape: mean-VC lowest (smallest reservations, highest concurrency),
percentile-VC highest (exclusive 95th-percentile reservations throttle
concurrency), SVC in between and closer to mean-VC; all curves grow with
oversubscription as upper-level links get scarcer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import (
    batch_workload,
    resolve_scale,
    simulation_rng,
    standard_variants,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_batch
from repro.topology.builder import build_datacenter

DEFAULT_OVERSUBSCRIPTIONS = (1.0, 2.0, 3.0, 4.0)

EXPERIMENT = "fig5"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    oversubscriptions: Sequence[float] = DEFAULT_OVERSUBSCRIPTIONS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> List[Cell]:
    """One cell per (model variant, oversubscription factor)."""
    scale = resolve_scale(scale)
    cells = []
    for variant in standard_variants(epsilons):
        for factor in oversubscriptions:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{variant.label}/oversub={factor:g}",
                    scale=scale.name,
                    seed=seed,
                    params={
                        "label": variant.label,
                        "model": variant.model,
                        "epsilon": float(variant.epsilon),
                        "factor": float(factor),
                    },
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one variant's batch on one oversubscribed datacenter."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    specs = batch_workload(scale, cell.seed)
    tree = build_datacenter(scale.spec.with_oversubscription(params["factor"]))
    result = run_batch(
        tree,
        specs,
        model=params["model"],
        epsilon=params["epsilon"],
        rng=simulation_rng(cell.seed),
    )
    return CellOutcome(payload={"makespan": float(result.makespan)}, raw=result)


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the Fig. 5 table."""
    factors = ordered_unique(cell.params["factor"] for cell in cells)
    table = Table(
        title=f"Fig. 5 — batch completion time (s) vs oversubscription [{cells[0].scale}]",
        headers=["model"] + [f"oversub={factor:g}" for factor in factors],
    )
    raw = {}
    for label in ordered_unique(cell.params["label"] for cell in cells):
        values = []
        for cell in cells:
            if cell.params["label"] != label:
                continue
            outcome = outcomes[cell.key]
            values.append(outcome.payload["makespan"])
            raw[(label, cell.params["factor"])] = outcome.result
        table.add_row(label, *values)
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    oversubscriptions: Sequence[float] = DEFAULT_OVERSUBSCRIPTIONS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> ExperimentResult:
    """Reproduce Fig. 5 at the given scale."""
    cells = enumerate_cells(
        scale=scale, seed=seed, oversubscriptions=oversubscriptions, epsilons=epsilons
    )
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
