"""Fig. 5 — total completion time of a job batch vs. network oversubscription.

The paper batches 500 jobs in a FIFO queue and reports the completion time of
the whole batch while sweeping the physical oversubscription factor.  Paper
shape: mean-VC lowest (smallest reservations, highest concurrency),
percentile-VC highest (exclusive 95th-percentile reservations throttle
concurrency), SVC in between and closer to mean-VC; all curves grow with
oversubscription as upper-level links get scarcer.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    batch_workload,
    resolve_scale,
    simulation_rng,
    standard_variants,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_batch
from repro.topology.builder import build_datacenter

DEFAULT_OVERSUBSCRIPTIONS = (1.0, 2.0, 3.0, 4.0)


def run(
    scale="small",
    seed: int = 0,
    oversubscriptions: Sequence[float] = DEFAULT_OVERSUBSCRIPTIONS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> ExperimentResult:
    """Reproduce Fig. 5 at the given scale."""
    scale = resolve_scale(scale)
    specs = batch_workload(scale, seed)
    variants = standard_variants(epsilons)

    table = Table(
        title=f"Fig. 5 — batch completion time (s) vs oversubscription [{scale.name}]",
        headers=["model"] + [f"oversub={factor:g}" for factor in oversubscriptions],
    )
    raw = {}
    for variant in variants:
        cells = []
        for factor in oversubscriptions:
            tree = build_datacenter(scale.spec.with_oversubscription(factor))
            result = run_batch(
                tree,
                specs,
                model=variant.model,
                epsilon=variant.epsilon,
                rng=simulation_rng(seed),
            )
            cells.append(float(result.makespan))
            raw[(variant.label, factor)] = result
        table.add_row(variant.label, *cells)
    return ExperimentResult(experiment="fig5", tables=[table], raw=raw)
