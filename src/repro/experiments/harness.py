"""Parallel, checkpointable execution of experiment sweeps.

Every experiment decomposes into independent **cells** (see
:mod:`repro.experiments.cells`); this module is the engine that executes
them — in-process at ``--workers 1`` (keeping rich ``raw`` results,
bit-identical to a plain ``module.run()`` call) or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` at ``--workers N``.

With a ``--run-dir``, every completed cell is persisted as one JSON file
under ``<run_dir>/cells/<experiment>/`` via an atomic write (tmp file +
``os.replace``), so a killed sweep loses at most the cells in flight.
``--resume`` re-enters the directory, loads every checkpoint whose stored
cell description still matches the requested sweep (a parameter change
invalidates the checkpoint, which is silently recomputed), and computes
only what is missing.  A non-empty run dir is refused without ``--resume``
so two unrelated sweeps can never interleave their checkpoints.

Layout of a run directory::

    <run_dir>/
      manifest.json                   # {"version", "scale", "seed", ...}
      cells/<experiment>/<slug>.<crc32>.json   # one checkpoint per cell

Aggregated tables are built from checkpoint payloads only, so a resumed or
pooled run renders byte-identical tables to a fresh single-process run of
the same (scale, seed) sweep.
"""

from __future__ import annotations

import json
import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.cells import Cell, CellOutcome, cell_filename, unique_cells
from repro.experiments.common import resolve_scale
from repro.experiments.tables import ExperimentResult
from repro.obs.instruments import experiment_instruments

__all__ = [
    "RunDirError",
    "CellStore",
    "run_experiments",
    "module_for_experiment",
]

logger = logging.getLogger(__name__)

MANIFEST_FILENAME = "manifest.json"
MANIFEST_VERSION = 1


class RunDirError(RuntimeError):
    """A run directory cannot be (re)used as requested."""


# ----------------------------------------------------------------------
# Cell-module dispatch (worker side)
# ----------------------------------------------------------------------

_MODULES_BY_EXPERIMENT: Optional[Dict[str, Any]] = None


def module_for_experiment(experiment: str):
    """The experiment module owning cells tagged ``experiment``.

    Keyed by each module's ``EXPERIMENT`` constant (what :class:`Cell`
    carries), not the CLI registry name — the two differ for ``het`` /
    ``het-vs-first-fit``.  Imported lazily so pool workers resolve the
    table on first use after the fork.
    """
    global _MODULES_BY_EXPERIMENT
    if _MODULES_BY_EXPERIMENT is None:
        from repro.experiments.runner import EXPERIMENT_MODULES

        _MODULES_BY_EXPERIMENT = {
            module.EXPERIMENT: module for module in EXPERIMENT_MODULES.values()
        }
    try:
        return _MODULES_BY_EXPERIMENT[experiment]
    except KeyError:
        raise KeyError(f"no experiment module owns cells tagged {experiment!r}")


def _run_cell_worker(cell_json: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: compute one cell, return its JSON payload + timing."""
    cell = Cell.from_json(cell_json)
    started = perf_counter()
    outcome = module_for_experiment(cell.experiment).run_cell(cell)
    return {"payload": outcome.payload, "seconds": perf_counter() - started}


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class CellStore:
    """Checkpointed cells of one run directory.

    Construction validates or creates the directory: an existing, non-empty
    directory is only entered with ``resume=True`` and only when its
    manifest matches the requested ``(scale, seed)`` — a mismatch means the
    checkpoints describe a different sweep and resuming would silently mix
    results.
    """

    def __init__(
        self, run_dir, scale: str, seed: int, resume: bool = False
    ) -> None:
        self.run_dir = Path(run_dir)
        self.resumed_cells = 0
        manifest = {"version": MANIFEST_VERSION, "scale": str(scale), "seed": int(seed)}
        manifest_path = self.run_dir / MANIFEST_FILENAME
        if self.run_dir.exists() and any(self.run_dir.iterdir()):
            if not resume:
                raise RunDirError(
                    f"run dir {self.run_dir} is not empty; "
                    "pass --resume to continue the sweep checkpointed there"
                )
            if not manifest_path.exists():
                raise RunDirError(
                    f"run dir {self.run_dir} has no {MANIFEST_FILENAME}; "
                    "refusing to resume into a directory this harness did not create"
                )
            with open(manifest_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            mismatches = [
                f"{key}: run dir has {stored.get(key)!r}, invocation has {value!r}"
                for key, value in manifest.items()
                if stored.get(key) != value
            ]
            if mismatches:
                raise RunDirError(
                    f"cannot resume {self.run_dir}: " + "; ".join(mismatches)
                )
        else:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            _atomic_write_json(
                manifest_path, {**manifest, "created_at": time.time()}
            )

    def _cell_path(self, cell: Cell) -> Path:
        return self.run_dir / "cells" / cell.experiment / cell_filename(cell)

    def load(self, cell: Cell) -> Optional[Dict[str, Any]]:
        """The checkpointed payload of ``cell``, or ``None`` to recompute.

        A checkpoint is only honoured when its stored cell description is
        exactly the requested one — a changed parameter (or a truncated
        file from a crash mid-write, which the atomic replace makes
        impossible but a foreign file could fake) falls back to computing.
        """
        path = self._cell_path(cell)
        if not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
        except (OSError, ValueError):
            logger.warning("unreadable checkpoint %s; recomputing", path)
            return None
        if stored.get("cell") != cell.to_json():
            logger.warning(
                "checkpoint %s was computed with different parameters; recomputing",
                path,
            )
            return None
        payload = stored.get("payload")
        if not isinstance(payload, dict):
            logger.warning("checkpoint %s has no payload; recomputing", path)
            return None
        self.resumed_cells += 1
        return payload

    def save(self, cell: Cell, payload: Dict[str, Any], seconds: float) -> None:
        path = self._cell_path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            path,
            {"cell": cell.to_json(), "payload": payload, "seconds": seconds},
        )


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------


class _Progress:
    """Counts completed cells; emits one log line per cell with a naive ETA."""

    def __init__(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.computed = 0
        self.spent = 0.0
        self.resumed = 0
        self._instruments = experiment_instruments()

    def record(self, cell: Cell, seconds: float, cached: bool = False) -> None:
        self.done += 1
        if cached:
            self.resumed += 1
            logger.info(
                "cell %d/%d %s [%s] resumed from checkpoint",
                self.done, self.total, cell.experiment, cell.key,
            )
            return
        self.computed += 1
        self.spent += seconds
        self._instruments.cell_completed(cell.experiment, seconds)
        average = self.spent / self.computed
        eta = average * (self.total - self.done)
        logger.info(
            "cell %d/%d %s [%s] %.2fs (avg %.2fs, eta %.0fs, %d resumed)",
            self.done, self.total, cell.experiment, cell.key,
            seconds, average, eta, self.resumed,
        )


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------

_Plan = Tuple[str, Any, List[Cell]]


def _build_plans(
    names: Sequence[str],
    scale,
    seed: int,
    epsilon: Optional[float],
    allocator: Optional[str],
    derive_seed: Optional[Callable[[str], int]],
) -> List[_Plan]:
    from repro.cli import experiment_overrides  # local: cli imports runner
    from repro.experiments.runner import EXPERIMENT_MODULES

    plans: List[_Plan] = []
    for name in names:
        module = EXPERIMENT_MODULES[name]
        overrides = experiment_overrides(
            module.enumerate_cells, epsilon=epsilon, allocator=allocator
        )
        cell_seed = derive_seed(name) if derive_seed is not None else seed
        cells = unique_cells(
            module.enumerate_cells(scale=scale, seed=cell_seed, **overrides)
        )
        plans.append((name, module, cells))
    return plans


def _run_plans_inprocess(
    plans: Sequence[_Plan], store: Optional[CellStore], progress: _Progress
) -> List[ExperimentResult]:
    """The ``--workers 1`` path: same in-order ``run_cell`` calls as ``run()``."""
    results = []
    for _name, module, cells in plans:
        outcomes: Dict[str, CellOutcome] = {}
        for cell in cells:
            payload = store.load(cell) if store is not None else None
            if payload is not None:
                outcomes[cell.key] = CellOutcome(payload=payload)
                progress.record(cell, 0.0, cached=True)
                continue
            started = perf_counter()
            outcome = module.run_cell(cell)
            seconds = perf_counter() - started
            if store is not None:
                store.save(cell, outcome.payload, seconds)
            outcomes[cell.key] = outcome
            progress.record(cell, seconds)
        results.append(module.aggregate(cells, outcomes))
    return results


def _run_plans_pooled(
    plans: Sequence[_Plan],
    store: Optional[CellStore],
    progress: _Progress,
    workers: int,
) -> List[ExperimentResult]:
    """Fan missing cells across all experiments out over a process pool."""
    outcome_maps: Dict[str, Dict[str, CellOutcome]] = {
        name: {} for name, _module, _cells in plans
    }
    pending: List[Tuple[str, Cell]] = []
    for name, _module, cells in plans:
        for cell in cells:
            payload = store.load(cell) if store is not None else None
            if payload is not None:
                outcome_maps[name][cell.key] = CellOutcome(payload=payload)
                progress.record(cell, 0.0, cached=True)
            else:
                pending.append((name, cell))
    if pending:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_cell_worker, cell.to_json()): (name, cell)
                for name, cell in pending
            }
            for future in as_completed(futures):
                name, cell = futures[future]
                computed = future.result()
                payload, seconds = computed["payload"], computed["seconds"]
                if store is not None:
                    store.save(cell, payload, seconds)
                outcome_maps[name][cell.key] = CellOutcome(payload=payload)
                progress.record(cell, seconds)
    return [
        module.aggregate(cells, outcome_maps[name])
        for name, module, cells in plans
    ]


def run_experiments(
    names: Sequence[str],
    scale="small",
    seed: int = 0,
    epsilon: Optional[float] = None,
    allocator: Optional[str] = None,
    workers: int = 1,
    run_dir=None,
    resume: bool = False,
    derive_seed: Optional[Callable[[str], int]] = None,
) -> List[ExperimentResult]:
    """Run the named experiments through the cell harness, in order.

    ``names`` are CLI registry names (``fig5`` ... ``validate-outage``).
    ``derive_seed`` maps a registry name to that experiment's trial seed
    (``run_all`` passes the per-experiment child derivation); by default
    every experiment receives ``seed`` unchanged, matching a direct
    ``module.run(seed=...)`` call.

    ``workers=1`` executes in-process — identical call sequence, identical
    tables, and rich ``result.raw`` objects, exactly like ``module.run()``.
    ``workers>1`` fans cells over a process pool; ``result.raw`` then holds
    the JSON payloads.  With ``run_dir``, completed cells are checkpointed
    and ``resume=True`` skips them on re-entry.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    scale_name = resolve_scale(scale).name
    plans = _build_plans(names, scale_name, seed, epsilon, allocator, derive_seed)
    store = (
        CellStore(run_dir, scale_name, seed, resume=resume)
        if run_dir is not None
        else None
    )
    total = sum(len(cells) for _name, _module, cells in plans)
    progress = _Progress(total)
    logger.info(
        "running %d experiment(s), %d cells, %d worker(s)%s",
        len(plans), total, workers,
        f", run dir {store.run_dir}" if store is not None else "",
    )
    if workers == 1:
        results = _run_plans_inprocess(plans, store, progress)
    else:
        results = _run_plans_pooled(plans, store, progress, workers)
    logger.info(
        "completed %d cells (%d computed, %d resumed)",
        progress.done, progress.computed, progress.resumed,
    )
    return results
