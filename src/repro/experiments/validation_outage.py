"""Validation: does the probabilistic guarantee actually hold?

Not a figure of the paper — a certification of its central claim.  Eq. (1)
promises that, on every link, the resident stochastic demands exceed the
shared bandwidth with probability below ``epsilon``.  The admission test gets
there through two approximations (the min-of-normals moment matching of
Lemma 1 and the CLT), so the bound deserves an empirical check: we run the
online SVC scenario with outage instrumentation and compare the measured
frequency of (directed link, second) pairs whose *offered* demand exceeded
capacity against the configured ``epsilon``.

Expected outcome: the empirical rate sits at or below ``epsilon`` (the
analysis is conservative — strict ``O_L < 1`` admission, zero-clipped demand
draws, and the min() bound all cut the same direction).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import Cell, CellOutcome, run_cells_sequentially
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_EPSILONS = (0.02, 0.05, 0.1, 0.2)
DEFAULT_LOAD = 0.8

EXPERIMENT = "validate-outage"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    load: float = DEFAULT_LOAD,
) -> List[Cell]:
    """One cell per epsilon SLA at the fixed load."""
    scale = resolve_scale(scale)
    return [
        Cell(
            experiment=EXPERIMENT,
            key=f"eps={epsilon:g}/load={load:g}",
            scale=scale.name,
            seed=seed,
            params={"epsilon": float(epsilon), "load": float(load)},
        )
        for epsilon in epsilons
    ]


def run_cell(cell: Cell) -> CellOutcome:
    """Run the instrumented online scenario at one epsilon."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model="svc",
        epsilon=params["epsilon"],
        rng=simulation_rng(cell.seed),
        track_outages=True,
    )
    return CellOutcome(
        payload={
            "outage_link_seconds": int(result.outage_link_seconds),
            "loaded_link_seconds": int(result.loaded_link_seconds),
            "empirical_rate": float(result.empirical_outage_rate),
        },
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the outage-validation table."""
    load = cells[0].params["load"]
    table = Table(
        title=(
            f"Validation — empirical link outage rate vs epsilon at {load:.0%} load "
            f"[{cells[0].scale}]"
        ),
        headers=[
            "epsilon", "outage link-seconds", "loaded link-seconds",
            "empirical rate", "bound respected",
        ],
    )
    raw = {}
    for cell in cells:
        outcome = outcomes[cell.key]
        epsilon = cell.params["epsilon"]
        rate = outcome.payload["empirical_rate"]
        table.add_row(
            f"{epsilon:g}",
            float(outcome.payload["outage_link_seconds"]),
            float(outcome.payload["loaded_link_seconds"]),
            rate,
            "yes" if rate <= epsilon else "NO",
        )
        raw[epsilon] = outcome.result
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    load: float = DEFAULT_LOAD,
) -> ExperimentResult:
    """Measure per-link outage frequency against the epsilon SLA."""
    cells = enumerate_cells(scale=scale, seed=seed, epsilons=epsilons, load=load)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
