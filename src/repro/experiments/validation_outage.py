"""Validation: does the probabilistic guarantee actually hold?

Not a figure of the paper — a certification of its central claim.  Eq. (1)
promises that, on every link, the resident stochastic demands exceed the
shared bandwidth with probability below ``epsilon``.  The admission test gets
there through two approximations (the min-of-normals moment matching of
Lemma 1 and the CLT), so the bound deserves an empirical check: we run the
online SVC scenario with outage instrumentation and compare the measured
frequency of (directed link, second) pairs whose *offered* demand exceeded
capacity against the configured ``epsilon``.

Expected outcome: the empirical rate sits at or below ``epsilon`` (the
analysis is conservative — strict ``O_L < 1`` admission, zero-clipped demand
draws, and the min() bound all cut the same direction).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_EPSILONS = (0.02, 0.05, 0.1, 0.2)
DEFAULT_LOAD = 0.8


def run(
    scale="small",
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    load: float = DEFAULT_LOAD,
) -> ExperimentResult:
    """Measure per-link outage frequency against the epsilon SLA."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)
    specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)

    table = Table(
        title=f"Validation — empirical link outage rate vs epsilon at {load:.0%} load [{scale.name}]",
        headers=[
            "epsilon", "outage link-seconds", "loaded link-seconds",
            "empirical rate", "bound respected",
        ],
    )
    raw = {}
    for epsilon in epsilons:
        result = run_online(
            tree,
            specs,
            model="svc",
            epsilon=epsilon,
            rng=simulation_rng(seed),
            track_outages=True,
        )
        rate = result.empirical_outage_rate
        table.add_row(
            f"{epsilon:g}",
            float(result.outage_link_seconds),
            float(result.loaded_link_seconds),
            rate,
            "yes" if rate <= epsilon else "NO",
        )
        raw[epsilon] = result
    return ExperimentResult(experiment="validation-outage", tables=[table], raw=raw)
