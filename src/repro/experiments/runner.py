"""Run every experiment in sequence (the ``all`` CLI subcommand)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    ablation_epsilon,
    ablation_locality,
    validation_outage,
    fig5_batch_oversub,
    fig6_runtime_vs_deviation,
    fig7_rejection_vs_load,
    fig8_concurrency,
    fig9_occupancy_cdf,
    fig10_svc_vs_tivc_rejection,
    het_vs_first_fit,
)
from repro.experiments.tables import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig5": fig5_batch_oversub.run,
    "fig6": fig6_runtime_vs_deviation.run,
    "fig7": fig7_rejection_vs_load.run,
    "fig8": fig8_concurrency.run,
    "fig9": fig9_occupancy_cdf.run,
    "fig10": fig10_svc_vs_tivc_rejection.run,
    "het": het_vs_first_fit.run,
    "ablation-epsilon": ablation_epsilon.run,
    "ablation-locality": ablation_locality.run,
    "validate-outage": validation_outage.run,
}


def run_all(
    scale="small",
    seed: int = 0,
    epsilon=None,
    allocator=None,
) -> List[ExperimentResult]:
    """Run every experiment and return the results in figure order.

    ``epsilon``/``allocator`` (the CLI override flags) are forwarded to each
    runner that accepts them; runners without the matching parameter run at
    their defaults.
    """
    from repro.cli import experiment_overrides

    results = []
    for runner in EXPERIMENTS.values():
        overrides = experiment_overrides(runner, epsilon=epsilon, allocator=allocator)
        results.append(runner(scale=scale, seed=seed, **overrides))
    return results
