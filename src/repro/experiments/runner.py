"""Run every experiment in sequence (the ``all`` CLI subcommand)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    ablation_epsilon,
    ablation_locality,
    validation_outage,
    fig5_batch_oversub,
    fig6_runtime_vs_deviation,
    fig7_rejection_vs_load,
    fig8_concurrency,
    fig9_occupancy_cdf,
    fig10_svc_vs_tivc_rejection,
    fig_elastic_resize,
    het_vs_first_fit,
)
from repro.experiments.common import experiment_seed
from repro.experiments.tables import ExperimentResult

#: Registry name -> experiment module (each exposes the cell protocol:
#: ``EXPERIMENT``, ``enumerate_cells``, ``run_cell``, ``aggregate``, ``run``).
EXPERIMENT_MODULES = {
    "fig5": fig5_batch_oversub,
    "fig6": fig6_runtime_vs_deviation,
    "fig7": fig7_rejection_vs_load,
    "fig8": fig8_concurrency,
    "fig9": fig9_occupancy_cdf,
    "fig10": fig10_svc_vs_tivc_rejection,
    "het": het_vs_first_fit,
    "elastic-resize": fig_elastic_resize,
    "ablation-epsilon": ablation_epsilon,
    "ablation-locality": ablation_locality,
    "validate-outage": validation_outage,
}

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    name: module.run for name, module in EXPERIMENT_MODULES.items()
}


def run_all(
    scale="small",
    seed: int = 0,
    epsilon=None,
    allocator=None,
    workers: int = 1,
    run_dir=None,
    resume: bool = False,
) -> List[ExperimentResult]:
    """Run every experiment and return the results in figure order.

    Each experiment receives its own child seed derived from ``seed`` and
    the experiment's registry name (:func:`repro.experiments.common
    .experiment_seed`), so no two experiments consume byte-identical
    workloads and the derivation is stable against reordering this
    registry.  ``epsilon``/``allocator`` (the CLI override flags) are
    forwarded to each experiment that accepts them; the rest run at their
    defaults.  ``workers``/``run_dir``/``resume`` select the parallel
    checkpointing harness (:mod:`repro.experiments.harness`).
    """
    from repro.experiments.harness import run_experiments

    return run_experiments(
        list(EXPERIMENT_MODULES),
        scale=scale,
        seed=seed,
        epsilon=epsilon,
        allocator=allocator,
        workers=workers,
        run_dir=run_dir,
        resume=resume,
        derive_seed=lambda name: experiment_seed(seed, name),
    )
