"""Section VI-B3 (text) — heterogeneous SVC allocator vs. plain first fit.

The paper reports (without a figure) that the heterogeneous substring
algorithm relates to plain first fit the same way the homogeneous DP relates
to adapted TIVC: "better bandwidth occupancy overhead and similar rejection
rates".  We reproduce that with a heterogeneous workload (per-VM demand
distributions) in the online scenario.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.first_fit import FirstFitAllocator
from repro.allocation.svc_het_heuristic import SVCHeterogeneousAllocator
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.6)
DEFAULT_PERCENTILES = (10, 25, 50, 75, 90, 100)

ALGORITHMS = (
    ("SVC-het", SVCHeterogeneousAllocator),
    ("first-fit", FirstFitAllocator),
)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> ExperimentResult:
    """Reproduce the Section VI-B3 heterogeneous comparison."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)

    occupancy = Table(
        title=f"Heterogeneous SVC vs first fit — max occupancy at CDF percentiles [{scale.name}]",
        headers=["algorithm", "load"] + [f"p{pct}" for pct in percentiles],
    )
    rejection = Table(
        title="Heterogeneous SVC vs first fit — rejected requests (%)",
        headers=["algorithm"] + [f"load={load:.0%}" for load in loads],
    )
    raw = {}
    rejection_cells = {label: [] for label, _cls in ALGORITHMS}
    for load in loads:
        specs = online_workload(
            scale, seed, load=load, total_slots=tree.total_slots, heterogeneous=True
        )
        for label, allocator_cls in ALGORITHMS:
            result = run_online(
                tree,
                specs,
                model="svc",
                epsilon=epsilon,
                allocator=allocator_cls(),
                rng=simulation_rng(seed),
            )
            samples = np.asarray(result.max_occupancies)
            cells = [
                float(np.percentile(samples, pct)) if samples.size else float("nan")
                for pct in percentiles
            ]
            occupancy.add_row(label, f"{load:.0%}", *cells)
            rejection_cells[label].append(100.0 * result.rejection_rate)
            raw[(label, load)] = result
    for label, _cls in ALGORITHMS:
        rejection.add_row(label, *rejection_cells[label])
    return ExperimentResult(
        experiment="het-vs-first-fit", tables=[occupancy, rejection], raw=raw
    )
