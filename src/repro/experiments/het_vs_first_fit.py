"""Section VI-B3 (text) — heterogeneous SVC allocator vs. plain first fit.

The paper reports (without a figure) that the heterogeneous substring
algorithm relates to plain first fit the same way the homogeneous DP relates
to adapted TIVC: "better bandwidth occupancy overhead and similar rejection
rates".  We reproduce that with a heterogeneous workload (per-VM demand
distributions) in the online scenario.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.allocation.first_fit import FirstFitAllocator
from repro.allocation.svc_het_heuristic import SVCHeterogeneousAllocator
from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.6)
DEFAULT_PERCENTILES = (10, 25, 50, 75, 90, 100)

ALGORITHMS = (
    ("SVC-het", SVCHeterogeneousAllocator),
    ("first-fit", FirstFitAllocator),
)

EXPERIMENT = "het-vs-first-fit"


def _allocator_by_label(label: str):
    for name, allocator_cls in ALGORITHMS:
        if name == label:
            return allocator_cls()
    raise ValueError(f"unknown heterogeneous algorithm {label!r}")


def enumerate_cells(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> List[Cell]:
    """One cell per (load, allocator), in table order."""
    scale = resolve_scale(scale)
    cells = []
    for load in loads:
        for label, _allocator_cls in ALGORITHMS:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{label}/load={load:g}",
                    scale=scale.name,
                    seed=seed,
                    params={
                        "algorithm": label,
                        "load": float(load),
                        "epsilon": float(epsilon),
                        "percentiles": [int(pct) for pct in percentiles],
                    },
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one allocator over the heterogeneous workload at one load."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale,
        cell.seed,
        load=params["load"],
        total_slots=tree.total_slots,
        heterogeneous=True,
    )
    result = run_online(
        tree,
        specs,
        model="svc",
        epsilon=params["epsilon"],
        allocator=_allocator_by_label(params["algorithm"]),
        rng=simulation_rng(cell.seed),
    )
    samples = np.asarray(result.max_occupancies)
    values = [
        float(np.percentile(samples, pct)) if samples.size else float("nan")
        for pct in params["percentiles"]
    ]
    return CellOutcome(
        payload={
            "percentile_values": values,
            "rejected_pct": 100.0 * float(result.rejection_rate),
        },
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the occupancy and rejection tables."""
    loads = ordered_unique(cell.params["load"] for cell in cells)
    labels = ordered_unique(cell.params["algorithm"] for cell in cells)
    percentiles = cells[0].params["percentiles"]
    occupancy = Table(
        title=(
            "Heterogeneous SVC vs first fit — max occupancy at CDF percentiles "
            f"[{cells[0].scale}]"
        ),
        headers=["algorithm", "load"] + [f"p{pct}" for pct in percentiles],
    )
    rejection = Table(
        title="Heterogeneous SVC vs first fit — rejected requests (%)",
        headers=["algorithm"] + [f"load={load:.0%}" for load in loads],
    )
    raw = {}
    rejection_cells = {label: [] for label in labels}
    for load in loads:
        for cell in cells:
            if cell.params["load"] != load:
                continue
            outcome = outcomes[cell.key]
            label = cell.params["algorithm"]
            occupancy.add_row(label, f"{load:.0%}", *outcome.payload["percentile_values"])
            rejection_cells[label].append(outcome.payload["rejected_pct"])
            raw[(label, load)] = outcome.result
    for label in labels:
        rejection.add_row(label, *rejection_cells[label])
    return ExperimentResult(
        experiment=EXPERIMENT, tables=[occupancy, rejection], raw=raw
    )


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> ExperimentResult:
    """Reproduce the Section VI-B3 heterogeneous comparison."""
    cells = enumerate_cells(
        scale=scale, seed=seed, loads=loads, epsilon=epsilon, percentiles=percentiles
    )
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
