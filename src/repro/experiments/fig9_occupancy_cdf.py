"""Fig. 9 — CDF of the maximum bandwidth occupancy ratio: SVC DP vs. TIVC.

Both allocators place the *same* SVC workload; the only difference is the
occupancy optimization of Algorithm 1.  The paper samples ``max_L O_L`` at
every arrival and plots its empirical CDF at 20% and 60% load; the SVC curve
stochastically dominates (sits left of) the adapted-TIVC curve — e.g. at 20%
load SVC has ~50% of samples below 0.996 versus ~10% for TIVC.

We report the occupancy value at fixed CDF percentiles per (allocator, load),
which carries the same information as the plotted curves.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.allocation.svc_homogeneous import AdaptedTIVCAllocator, SVCHomogeneousAllocator
from repro.experiments.ascii_plot import render_cdf
from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.6)
DEFAULT_PERCENTILES = (10, 25, 50, 75, 90, 100)

ALGORITHMS = (
    ("SVC", SVCHomogeneousAllocator),
    ("TIVC", AdaptedTIVCAllocator),
)

EXPERIMENT = "fig9"


def _allocator_by_label(label: str):
    for name, allocator_cls in ALGORITHMS:
        if name == label:
            return allocator_cls()
    raise ValueError(f"unknown fig9 algorithm {label!r}")


def enumerate_cells(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> List[Cell]:
    """One cell per (load, occupancy algorithm), in table order."""
    scale = resolve_scale(scale)
    cells = []
    for load in loads:
        for label, _allocator_cls in ALGORITHMS:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{label}/load={load:g}",
                    scale=scale.name,
                    seed=seed,
                    params={
                        "algorithm": label,
                        "load": float(load),
                        "epsilon": float(epsilon),
                        "percentiles": [int(pct) for pct in percentiles],
                    },
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one allocator over the shared SVC workload at one load."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model="svc",
        epsilon=params["epsilon"],
        allocator=_allocator_by_label(params["algorithm"]),
        rng=simulation_rng(cell.seed),
    )
    samples = np.asarray(result.max_occupancies)
    values = [
        float(np.percentile(samples, pct)) if samples.size else float("nan")
        for pct in params["percentiles"]
    ]
    return CellOutcome(
        payload={
            "percentile_values": values,
            "samples": [float(sample) for sample in result.max_occupancies],
        },
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the Fig. 9 table and CDF notes."""
    percentiles = cells[0].params["percentiles"]
    table = Table(
        title=(
            f"Fig. 9 — max bandwidth occupancy ratio at CDF percentiles "
            f"[{cells[0].scale}]"
        ),
        headers=["algorithm", "load"] + [f"p{pct}" for pct in percentiles],
    )
    raw = {}
    notes = []
    for load in ordered_unique(cell.params["load"] for cell in cells):
        curves = {}
        for cell in cells:
            if cell.params["load"] != load:
                continue
            outcome = outcomes[cell.key]
            label = cell.params["algorithm"]
            table.add_row(label, f"{load:.0%}", *outcome.payload["percentile_values"])
            raw[(label, load)] = outcome.result
            samples = np.asarray(outcome.payload["samples"])
            if samples.size:
                curves[label] = samples
        if curves:
            notes.append(
                f"CDF of max bandwidth occupancy ratio at {load:.0%} load:\n"
                + render_cdf(curves, x_label="max occupancy ratio")
            )
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw, notes=notes)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> ExperimentResult:
    """Reproduce Fig. 9 at the given scale."""
    cells = enumerate_cells(
        scale=scale, seed=seed, loads=loads, epsilon=epsilon, percentiles=percentiles
    )
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
