"""Fig. 9 — CDF of the maximum bandwidth occupancy ratio: SVC DP vs. TIVC.

Both allocators place the *same* SVC workload; the only difference is the
occupancy optimization of Algorithm 1.  The paper samples ``max_L O_L`` at
every arrival and plots its empirical CDF at 20% and 60% load; the SVC curve
stochastically dominates (sits left of) the adapted-TIVC curve — e.g. at 20%
load SVC has ~50% of samples below 0.996 versus ~10% for TIVC.

We report the occupancy value at fixed CDF percentiles per (allocator, load),
which carries the same information as the plotted curves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.svc_homogeneous import AdaptedTIVCAllocator, SVCHomogeneousAllocator
from repro.experiments.ascii_plot import render_cdf
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.6)
DEFAULT_PERCENTILES = (10, 25, 50, 75, 90, 100)

ALGORITHMS = (
    ("SVC", SVCHomogeneousAllocator),
    ("TIVC", AdaptedTIVCAllocator),
)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> ExperimentResult:
    """Reproduce Fig. 9 at the given scale."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)

    table = Table(
        title=f"Fig. 9 — max bandwidth occupancy ratio at CDF percentiles [{scale.name}]",
        headers=["algorithm", "load"] + [f"p{pct}" for pct in percentiles],
    )
    raw = {}
    notes = []
    for load in loads:
        specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)
        curves = {}
        for label, allocator_cls in ALGORITHMS:
            result = run_online(
                tree,
                specs,
                model="svc",
                epsilon=epsilon,
                allocator=allocator_cls(),
                rng=simulation_rng(seed),
            )
            samples = np.asarray(result.max_occupancies)
            cells = [
                float(np.percentile(samples, pct)) if samples.size else float("nan")
                for pct in percentiles
            ]
            table.add_row(label, f"{load:.0%}", *cells)
            raw[(label, load)] = result
            if samples.size:
                curves[label] = samples
        if curves:
            notes.append(
                f"CDF of max bandwidth occupancy ratio at {load:.0%} load:\n"
                + render_cdf(curves, x_label="max occupancy ratio")
            )
    return ExperimentResult(experiment="fig9", tables=[table], raw=raw, notes=notes)
