"""Ablation: what the lowest-subtree locality bias buys.

Algorithm 1 places in the *lowest-level* feasible subtree before optimizing
occupancy — "the most localized allocation of VMs such that the bandwidth of
the links in the upper levels of the tree is conserved and the ability to
accommodate future tenant requests is maximized" (Section IV-C).  This
ablation compares it against :class:`GlobalMinMaxAllocator`, which drops the
bias and chases the globally minimal ``max_L O_L``: the global variant gets
flatter occupancy but burns aggregation/core bandwidth, which shows up as a
higher rejection rate under load.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.allocation.svc_homogeneous import (
    GlobalMinMaxAllocator,
    SVCHomogeneousAllocator,
)
from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.4, 0.8)

ALGORITHMS = (
    ("localized (Alg. 1)", SVCHomogeneousAllocator),
    ("global min-max", GlobalMinMaxAllocator),
)

EXPERIMENT = "ablation-locality"


def _allocator_by_label(label: str):
    for name, allocator_cls in ALGORITHMS:
        if name == label:
            return allocator_cls()
    raise ValueError(f"unknown placement variant {label!r}")


def _mean_max_occupancy(result) -> float:
    """Mean of the sampled max occupancies — overall network pressure."""
    samples = result.max_occupancies
    return float(np.mean(samples)) if samples else float("nan")


def enumerate_cells(
    scale="small", seed: int = 0, loads: Sequence[float] = DEFAULT_LOADS
) -> List[Cell]:
    """One cell per (load, placement variant), in table order."""
    scale = resolve_scale(scale)
    cells = []
    for load in loads:
        for label, _allocator_cls in ALGORITHMS:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{label}/load={load:g}",
                    scale=scale.name,
                    seed=seed,
                    params={"placement": label, "load": float(load)},
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one placement variant's online stream at one load."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model="svc",
        allocator=_allocator_by_label(params["placement"]),
        rng=simulation_rng(cell.seed),
        track_levels=True,
    )
    return CellOutcome(
        payload={
            "rejected_pct": 100.0 * float(result.rejection_rate),
            "mean_max_occupancy": _mean_max_occupancy(result),
            "agg_uplink_occupancy": float(result.mean_level_occupancy(2)),
            "average_concurrency": float(result.average_concurrency),
        },
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the locality-ablation table."""
    table = Table(
        title=f"Ablation — locality bias of Algorithm 1 [{cells[0].scale}]",
        headers=[
            "placement", "load", "rejected (%)", "mean max-occupancy",
            "agg-uplink occupancy", "avg concurrency",
        ],
    )
    raw = {}
    for load in ordered_unique(cell.params["load"] for cell in cells):
        for cell in cells:
            if cell.params["load"] != load:
                continue
            outcome = outcomes[cell.key]
            label = cell.params["placement"]
            table.add_row(
                label,
                f"{load:.0%}",
                outcome.payload["rejected_pct"],
                outcome.payload["mean_max_occupancy"],
                outcome.payload["agg_uplink_occupancy"],
                outcome.payload["average_concurrency"],
            )
            raw[(label, load)] = outcome.result
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
) -> ExperimentResult:
    """Localized vs. global min-max placement under the SVC abstraction."""
    cells = enumerate_cells(scale=scale, seed=seed, loads=loads)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
