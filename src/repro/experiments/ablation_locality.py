"""Ablation: what the lowest-subtree locality bias buys.

Algorithm 1 places in the *lowest-level* feasible subtree before optimizing
occupancy — "the most localized allocation of VMs such that the bandwidth of
the links in the upper levels of the tree is conserved and the ability to
accommodate future tenant requests is maximized" (Section IV-C).  This
ablation compares it against :class:`GlobalMinMaxAllocator`, which drops the
bias and chases the globally minimal ``max_L O_L``: the global variant gets
flatter occupancy but burns aggregation/core bandwidth, which shows up as a
higher rejection rate under load.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.allocation.svc_homogeneous import (
    GlobalMinMaxAllocator,
    SVCHomogeneousAllocator,
)
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.4, 0.8)

ALGORITHMS = (
    ("localized (Alg. 1)", SVCHomogeneousAllocator),
    ("global min-max", GlobalMinMaxAllocator),
)


def _mean_max_occupancy(result) -> float:
    """Mean of the sampled max occupancies — overall network pressure."""
    samples = result.max_occupancies
    return float(np.mean(samples)) if samples else float("nan")


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
) -> ExperimentResult:
    """Localized vs. global min-max placement under the SVC abstraction."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)

    table = Table(
        title=f"Ablation — locality bias of Algorithm 1 [{scale.name}]",
        headers=[
            "placement", "load", "rejected (%)", "mean max-occupancy",
            "agg-uplink occupancy", "avg concurrency",
        ],
    )
    raw = {}
    for load in loads:
        specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)
        for label, allocator_cls in ALGORITHMS:
            result = run_online(
                tree,
                specs,
                model="svc",
                allocator=allocator_cls(),
                rng=simulation_rng(seed),
                track_levels=True,
            )
            table.add_row(
                label,
                f"{load:.0%}",
                100.0 * result.rejection_rate,
                _mean_max_occupancy(result),
                result.mean_level_occupancy(2),
                result.average_concurrency,
            )
            raw[(label, load)] = result
    return ExperimentResult(experiment="ablation-locality", tables=[table], raw=raw)
