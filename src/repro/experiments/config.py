"""Experiment scales.

The paper simulates a 1,000-machine datacenter with 500 jobs of mean size 49
("paper" scale).  The shapes of all results — which model wins, by roughly
what factor, where crossovers fall — are preserved at reduced scale, so the
default for interactive use is "small" and the pytest benchmarks run "tiny".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.workload import WorkloadConfig
from repro.topology.builder import (
    DatacenterSpec,
    PAPER_SPEC,
    SMALL_SPEC,
    TINY_SPEC,
)


@dataclass(frozen=True)
class ExperimentScale:
    """A datacenter spec paired with a matching workload size."""

    name: str
    spec: DatacenterSpec
    num_jobs: int
    mean_job_size: float
    max_job_size: int

    def workload(self, **overrides) -> WorkloadConfig:
        """The Section VI-A workload at this scale (kwargs override fields)."""
        params = dict(
            num_jobs=self.num_jobs,
            mean_job_size=self.mean_job_size,
            max_job_size=self.max_job_size,
        )
        params.update(overrides)
        return WorkloadConfig(**params)


TINY_SCALE = ExperimentScale(
    name="tiny", spec=TINY_SPEC, num_jobs=15, mean_job_size=6.0, max_job_size=24
)
SMALL_SCALE = ExperimentScale(
    name="small", spec=SMALL_SPEC, num_jobs=60, mean_job_size=12.0, max_job_size=48
)
PAPER_SCALE = ExperimentScale(
    name="paper", spec=PAPER_SPEC, num_jobs=500, mean_job_size=49.0, max_job_size=200
)

SCALES = {scale.name: scale for scale in (TINY_SCALE, SMALL_SCALE, PAPER_SCALE)}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a scale, with a helpful error listing the choices."""
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(SCALES)}") from None
