"""Cell decomposition of the experiment sweep.

A **cell** is the atom of the evaluation: one (variant x sweep-point x trial)
combination of one experiment — e.g. "Fig. 7, SVC(eps=0.05), load 60%,
seed 0".  Cells are embarrassingly parallel: each one regenerates its own
workload and data-plane streams from named :class:`~numpy.random.SeedSequence`
children of the trial seed (see :mod:`repro.experiments.common`), so a cell's
result is a pure function of its :class:`Cell` description and can be
computed in any process, in any order, and checkpointed to disk.

Every experiment module exposes the same three-function protocol on top of
this type:

- ``enumerate_cells(scale, seed, **params) -> List[Cell]`` — the sweep's
  cells in table order;
- ``run_cell(cell) -> CellOutcome`` — execute one cell;
- ``aggregate(cells, outcomes) -> ExperimentResult`` — fold the outcomes
  back into the experiment's tables.

``run()`` is the sequential composition of the three, so the parallel
harness at ``--workers 1`` is *the same code path* as a direct ``run()``
call — tables agree bit for bit by construction.

The ``payload`` of a :class:`CellOutcome` must be JSON-serializable with
exact round-tripping (floats survive ``json.dumps``/``loads`` bitwise), as
it is what the harness persists under ``--run-dir`` and ships across the
process pool.  ``raw`` carries the rich in-memory result (``BatchResult`` /
``OnlineResult``) and only exists when the cell ran in the calling process.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "Cell",
    "CellOutcome",
    "cell_filename",
    "ordered_unique",
    "run_cells_sequentially",
]


@dataclass(frozen=True)
class Cell:
    """One independently-computable unit of an experiment sweep."""

    #: Registry name of the owning experiment (``fig5`` ... ``validate-outage``).
    experiment: str
    #: Unique key within the experiment, e.g. ``"SVC(eps=0.05)/load=0.6"``.
    key: str
    #: Scale *name* (cells must be describable in JSON; scales are registered).
    scale: str
    #: Trial seed; the cell derives its named streams from this.
    seed: int
    #: JSON-safe keyword parameters the experiment's ``run_cell`` consumes.
    params: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "key": self.key,
            "scale": self.scale,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @staticmethod
    def from_json(payload: Mapping[str, Any]) -> "Cell":
        return Cell(
            experiment=payload["experiment"],
            key=payload["key"],
            scale=payload["scale"],
            seed=int(payload["seed"]),
            params=dict(payload["params"]),
        )


@dataclass
class CellOutcome:
    """What one executed cell produced.

    ``payload`` is the persisted, JSON-exact summary the tables are built
    from; ``raw`` is the in-memory simulation result (populated only when
    the cell ran in-process) that ``ExperimentResult.raw`` exposes to tests
    and notebooks.  Aggregation must consume **only** ``payload`` for table
    values so that in-process, pooled, and resumed-from-disk runs produce
    identical tables.
    """

    payload: Dict[str, Any]
    raw: Any = None

    @property
    def result(self) -> Any:
        """The richest view available: ``raw`` in-process, else ``payload``."""
        return self.raw if self.raw is not None else self.payload


def cell_filename(cell: Cell) -> str:
    """A stable, filesystem-safe, collision-free file name for one cell.

    The human-readable slug of the key is suffixed with a CRC of the exact
    key so two keys that slugify identically still map to distinct files.
    """
    slug = re.sub(r"[^a-zA-Z0-9.=-]+", "-", cell.key).strip("-")[:100] or "cell"
    return f"{slug}.{zlib.crc32(cell.key.encode('utf-8')):08x}.json"


def ordered_unique(values: Iterable[Any]) -> List[Any]:
    """Distinct values in first-appearance order (sweep axes from cells)."""
    seen = set()
    out = []
    for value in values:
        if value not in seen:
            seen.add(value)
            out.append(value)
    return out


def unique_cells(cells: Iterable[Cell]) -> List[Cell]:
    """Validate that cell identities are unique; returns the input as a list."""
    cells = list(cells)
    seen = set()
    for cell in cells:
        identity = (cell.experiment, cell.key)
        if identity in seen:
            raise ValueError(f"duplicate cell {identity!r} in sweep")
        seen.add(identity)
    return cells


def run_cells_sequentially(
    cells: Iterable[Cell],
    run_cell: Callable[[Cell], CellOutcome],
    observer: Optional[Callable[[Cell, CellOutcome, float], None]] = None,
) -> Dict[str, CellOutcome]:
    """Execute cells in order in this process, keeping rich ``raw`` results.

    This is the ``run()`` path of every experiment module; the harness calls
    the same ``run_cell`` functions, so anything computed here is computed
    identically under ``--workers N``.
    """
    from time import perf_counter

    outcomes: Dict[str, CellOutcome] = {}
    for cell in unique_cells(cells):
        started = perf_counter()
        outcome = run_cell(cell)
        if observer is not None:
            observer(cell, outcome, perf_counter() - started)
        outcomes[cell.key] = outcome
    return outcomes
