"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(scale=..., seed=...) -> ExperimentResult`` whose
table prints the same rows/series the paper reports:

==========================================  ==========================================
:mod:`repro.experiments.fig5_batch_oversub`   Fig. 5 — total completion time of a job
                                              batch vs. network oversubscription
:mod:`repro.experiments.fig6_runtime_vs_deviation`  Fig. 6 — average running time per
                                              job vs. deviation coefficient
:mod:`repro.experiments.fig7_rejection_vs_load`     Fig. 7 — % rejected requests vs. load
:mod:`repro.experiments.fig8_concurrency`     Fig. 8 — concurrent jobs at 60% load
:mod:`repro.experiments.fig9_occupancy_cdf`   Fig. 9 — CDF of max occupancy ratio,
                                              SVC DP vs. adapted TIVC
:mod:`repro.experiments.fig10_svc_vs_tivc_rejection`  Fig. 10 — rejection rate,
                                              SVC DP vs. adapted TIVC
:mod:`repro.experiments.het_vs_first_fit`     Section VI-B3 (text) — heterogeneous
                                              DP vs. plain first fit
==========================================  ==========================================
"""

from repro.experiments.config import SCALES, ExperimentScale, scale_by_name
from repro.experiments.tables import ExperimentResult, Table

__all__ = ["SCALES", "ExperimentScale", "scale_by_name", "ExperimentResult", "Table"]
