"""Elastic resize under churn — acceptance rate and the Eq. (1) guard.

Not a figure of the paper: the paper admits fixed-size tenants, but the
tentpole resize path must preserve the paper's invariants while tenants
grow and shrink.  This experiment fills the datacenter to a target load,
then drives rounds of random grow/shrink resizes through
:meth:`NetworkManager.resize` and reports

* the per-outcome split (``in_place`` / ``replaced`` / ``rejected``) and
  overall acceptance rate, and
* the **validity guard**: after every committed resize, every link must
  still satisfy the Eq. (4) admission invariant ``O_L < 1`` at the paper's
  epsilon — the condition under which the Eq. (1) outage bound holds.  Any
  violation is counted; the expected count is zero.

Cells-protocol compatible (``EXPERIMENT``/``enumerate_cells``/``run_cell``
/``aggregate``/``run``), so it rides the parallel checkpointing harness.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import batch_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.manager.network_manager import (
    RESIZE_IN_PLACE,
    RESIZE_REJECTED,
    RESIZE_REPLACED,
    NetworkManager,
)
from repro.simulation.workload import make_request
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.4, 0.7)
#: The paper's epsilon: the Eq. (1) guard runs at the SLA the paper uses.
PAPER_EPSILON = 0.05
#: Resize attempts per admitted tenant (scaled by the cell's tenant count).
CHURN_FACTOR = 4

EXPERIMENT = "elastic-resize"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = PAPER_EPSILON,
) -> List[Cell]:
    """One cell per initial datacenter load."""
    scale = resolve_scale(scale)
    return [
        Cell(
            experiment=EXPERIMENT,
            key=f"load={load:g}",
            scale=scale.name,
            seed=seed,
            params={"load": float(load), "epsilon": float(epsilon)},
        )
        for load in loads
    ]


def run_cell(cell: Cell) -> CellOutcome:
    """Fill to the target load, then churn grow/shrink resizes."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    epsilon = params["epsilon"]
    tree = build_datacenter(scale.spec)
    manager = NetworkManager(tree, epsilon=epsilon)
    rate_cap = tree.min_machine_uplink_capacity

    # Phase 1: admit the shared job batch until the slot load target.
    target_slots = int(params["load"] * tree.total_slots)
    admitted_ids: List[int] = []
    used_slots = 0
    for spec in batch_workload(scale, cell.seed):
        if used_slots >= target_slots:
            break
        request = make_request(spec, "svc", rate_cap=rate_cap)
        tenancy = manager.request(request)
        if tenancy is not None:
            admitted_ids.append(tenancy.request_id)
            used_slots += request.n_vms

    # Phase 2: grow/shrink churn over the resident tenants.
    rng = simulation_rng(cell.seed)
    outcomes = {RESIZE_IN_PLACE: 0, RESIZE_REPLACED: 0, RESIZE_REJECTED: 0}
    violations = 0
    rounds = CHURN_FACTOR * max(1, len(admitted_ids))
    for _ in range(rounds):
        request_id = admitted_ids[int(rng.integers(len(admitted_ids)))]
        current_n = manager.tenancy(request_id).n_vms
        if rng.random() < 0.5:
            new_n = current_n + int(rng.integers(1, 4))
        else:
            new_n = max(1, current_n - int(rng.integers(1, 4)))
        if new_n == current_n:
            continue
        result = manager.resize(request_id, new_n=new_n)
        outcomes[result.outcome] += 1
        if result.accepted:
            # Eq. (4) validity at the paper epsilon: every link O_L < 1,
            # the admission invariant under which Eq. (1) holds.
            if manager.max_occupancy() >= 1.0:
                violations += 1
    attempts = sum(outcomes.values())
    accepted = outcomes[RESIZE_IN_PLACE] + outcomes[RESIZE_REPLACED]
    return CellOutcome(
        payload={
            "tenants": len(admitted_ids),
            "attempts": attempts,
            "in_place": outcomes[RESIZE_IN_PLACE],
            "replaced": outcomes[RESIZE_REPLACED],
            "rejected": outcomes[RESIZE_REJECTED],
            "accepted_pct": 100.0 * accepted / attempts if attempts else 0.0,
            "validity_violations": violations,
        },
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the resize-churn table."""
    table = Table(
        title=(
            f"Elastic resize — acceptance under grow/shrink churn, "
            f"Eq. (1) guard at eps={cells[0].params['epsilon']:g} "
            f"[{cells[0].scale}]"
        ),
        headers=[
            "load", "tenants", "attempts", "in-place", "replaced",
            "rejected", "accepted %", "Eq.1 violations",
        ],
    )
    raw = {}
    for load in ordered_unique(cell.params["load"] for cell in cells):
        for cell in cells:
            if cell.params["load"] != load:
                continue
            payload = outcomes[cell.key].payload
            table.add_row(
                f"{load:.0%}",
                float(payload["tenants"]),
                float(payload["attempts"]),
                float(payload["in_place"]),
                float(payload["replaced"]),
                float(payload["rejected"]),
                payload["accepted_pct"],
                float(payload["validity_violations"]),
            )
            raw[load] = payload
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = PAPER_EPSILON,
) -> ExperimentResult:
    """Measure resize acceptance and the Eq. (1) guard under churn."""
    cells = enumerate_cells(scale=scale, seed=seed, loads=loads, epsilon=epsilon)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
