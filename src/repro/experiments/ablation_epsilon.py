"""Ablation: the risk factor epsilon as the concurrency/runtime knob.

Section VI-B1: "With smaller epsilon, SVC provides better bandwidth guarantee
and thus smaller job running time but reduces the job concurrency, which
means that we can tune epsilon to achieve the desired trade-off."  This
ablation sweeps epsilon in the online scenario and reports the three sides of
the knob: rejection rate (admission cost), average concurrency (multiplexing
gain), and average job running time (guarantee quality).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import Cell, CellOutcome, run_cells_sequentially
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_EPSILONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4)
DEFAULT_LOAD = 0.6

EXPERIMENT = "ablation-epsilon"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    load: float = DEFAULT_LOAD,
) -> List[Cell]:
    """One cell per risk factor at the fixed load."""
    scale = resolve_scale(scale)
    return [
        Cell(
            experiment=EXPERIMENT,
            key=f"eps={epsilon:g}/load={load:g}",
            scale=scale.name,
            seed=seed,
            params={"epsilon": float(epsilon), "load": float(load)},
        )
        for epsilon in epsilons
    ]


def run_cell(cell: Cell) -> CellOutcome:
    """Run the SVC online scenario at one epsilon."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model="svc",
        epsilon=params["epsilon"],
        rng=simulation_rng(cell.seed),
    )
    return CellOutcome(
        payload={
            "rejected_pct": 100.0 * float(result.rejection_rate),
            "average_concurrency": float(result.average_concurrency),
            "average_running_time": float(result.average_running_time),
        },
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the epsilon-knob table."""
    load = cells[0].params["load"]
    table = Table(
        title=f"Ablation — risk factor epsilon at {load:.0%} load [{cells[0].scale}]",
        headers=["epsilon", "rejected (%)", "avg concurrency", "avg runtime (s)"],
    )
    raw = {}
    for cell in cells:
        outcome = outcomes[cell.key]
        epsilon = cell.params["epsilon"]
        table.add_row(
            f"{epsilon:g}",
            outcome.payload["rejected_pct"],
            outcome.payload["average_concurrency"],
            outcome.payload["average_running_time"],
        )
        raw[epsilon] = outcome.result
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    load: float = DEFAULT_LOAD,
) -> ExperimentResult:
    """Sweep epsilon at fixed load under the SVC abstraction."""
    cells = enumerate_cells(scale=scale, seed=seed, epsilons=epsilons, load=load)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
