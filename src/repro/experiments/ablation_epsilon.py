"""Ablation: the risk factor epsilon as the concurrency/runtime knob.

Section VI-B1: "With smaller epsilon, SVC provides better bandwidth guarantee
and thus smaller job running time but reduces the job concurrency, which
means that we can tune epsilon to achieve the desired trade-off."  This
ablation sweeps epsilon in the online scenario and reports the three sides of
the knob: rejection rate (admission cost), average concurrency (multiplexing
gain), and average job running time (guarantee quality).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_EPSILONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4)
DEFAULT_LOAD = 0.6


def run(
    scale="small",
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    load: float = DEFAULT_LOAD,
) -> ExperimentResult:
    """Sweep epsilon at fixed load under the SVC abstraction."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)
    specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)

    table = Table(
        title=f"Ablation — risk factor epsilon at {load:.0%} load [{scale.name}]",
        headers=["epsilon", "rejected (%)", "avg concurrency", "avg runtime (s)"],
    )
    raw = {}
    for epsilon in epsilons:
        result = run_online(
            tree, specs, model="svc", epsilon=epsilon, rng=simulation_rng(seed)
        )
        table.add_row(
            f"{epsilon:g}",
            100.0 * result.rejection_rate,
            result.average_concurrency,
            result.average_running_time,
        )
        raw[epsilon] = result
    return ExperimentResult(experiment="ablation-epsilon", tables=[table], raw=raw)
