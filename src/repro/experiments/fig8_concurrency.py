"""Fig. 8 — concurrent jobs at 60% load: SVC vs. percentile-VC.

The paper records the number of running jobs every time a new job arrives
and finds SVC(eps=0.05) consistently about 10% above percentile-VC: SVC's
statistical multiplexing packs more tenants onto the same links than
exclusive 95th-percentile reservations.  We report the time series bucketed
into deciles of the run plus the overall averages and their ratio.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.experiments.common import ModelVariant, online_workload, resolve_scale, simulation_rng
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOAD = 0.6
_NUM_BUCKETS = 10


def _bucket_means(samples: List[Tuple[float, int]], num_buckets: int) -> List[float]:
    """Mean concurrency per time bucket (equal arrival-count buckets)."""
    counts = np.asarray([count for _t, count in samples], dtype=float)
    if counts.size == 0:
        return [float("nan")] * num_buckets
    chunks = np.array_split(counts, num_buckets)
    return [float(chunk.mean()) if chunk.size else float("nan") for chunk in chunks]


def run(scale="small", seed: int = 0, load: float = DEFAULT_LOAD, epsilon: float = 0.05) -> ExperimentResult:
    """Reproduce Fig. 8 at the given scale."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)
    specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)
    variants = [
        ModelVariant(f"SVC(eps={epsilon:g})", "svc", epsilon=epsilon),
        ModelVariant("percentile-VC", "percentile-vc"),
    ]

    series = Table(
        title=f"Fig. 8 — mean concurrent jobs per arrival-decile at {load:.0%} load [{scale.name}]",
        headers=["model"] + [f"d{decile}" for decile in range(1, _NUM_BUCKETS + 1)] + ["avg"],
    )
    raw = {}
    averages = {}
    for variant in variants:
        result = run_online(
            tree,
            specs,
            model=variant.model,
            epsilon=variant.epsilon,
            rng=simulation_rng(seed),
        )
        buckets = _bucket_means(result.concurrency_samples, _NUM_BUCKETS)
        series.add_row(variant.label, *buckets, result.average_concurrency)
        raw[variant.label] = result
        averages[variant.label] = result.average_concurrency

    svc_label = variants[0].label
    ratio = Table(
        title="Fig. 8 — SVC concurrency gain over percentile-VC",
        headers=["metric", "value"],
    )
    pvc = averages["percentile-VC"]
    gain = (averages[svc_label] / pvc - 1.0) * 100.0 if pvc else float("nan")
    ratio.add_row("avg concurrency SVC", averages[svc_label])
    ratio.add_row("avg concurrency percentile-VC", pvc)
    ratio.add_row("SVC gain (%)", gain)
    return ExperimentResult(experiment="fig8", tables=[series, ratio], raw=raw)
