"""Fig. 8 — concurrent jobs at 60% load: SVC vs. percentile-VC.

The paper records the number of running jobs every time a new job arrives
and finds SVC(eps=0.05) consistently about 10% above percentile-VC: SVC's
statistical multiplexing packs more tenants onto the same links than
exclusive 95th-percentile reservations.  We report the time series bucketed
into deciles of the run plus the overall averages and their ratio.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.cells import Cell, CellOutcome, run_cells_sequentially
from repro.experiments.common import (
    ModelVariant,
    online_workload,
    resolve_scale,
    simulation_rng,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOAD = 0.6
_NUM_BUCKETS = 10

EXPERIMENT = "fig8"


def _bucket_means(samples: List[Tuple[float, int]], num_buckets: int) -> List[float]:
    """Mean concurrency per time bucket (equal arrival-count buckets)."""
    counts = np.asarray([count for _t, count in samples], dtype=float)
    if counts.size == 0:
        return [float("nan")] * num_buckets
    chunks = np.array_split(counts, num_buckets)
    return [float(chunk.mean()) if chunk.size else float("nan") for chunk in chunks]


def _variants(epsilon: float) -> List[ModelVariant]:
    return [
        ModelVariant(f"SVC(eps={epsilon:g})", "svc", epsilon=epsilon),
        ModelVariant("percentile-VC", "percentile-vc"),
    ]


def enumerate_cells(
    scale="small", seed: int = 0, load: float = DEFAULT_LOAD, epsilon: float = 0.05
) -> List[Cell]:
    """One cell per model variant (single sweep point at the given load)."""
    scale = resolve_scale(scale)
    return [
        Cell(
            experiment=EXPERIMENT,
            key=f"{variant.label}/load={load:g}",
            scale=scale.name,
            seed=seed,
            params={
                "label": variant.label,
                "model": variant.model,
                "epsilon": float(variant.epsilon),
                "load": float(load),
            },
        )
        for variant in _variants(epsilon)
    ]


def run_cell(cell: Cell) -> CellOutcome:
    """Run one variant's online stream and bucket its concurrency series."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model=params["model"],
        epsilon=params["epsilon"],
        rng=simulation_rng(cell.seed),
    )
    return CellOutcome(
        payload={
            "buckets": _bucket_means(result.concurrency_samples, _NUM_BUCKETS),
            "average_concurrency": float(result.average_concurrency),
        },
        raw=result,
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the Fig. 8 series and ratio tables."""
    load = cells[0].params["load"]
    series = Table(
        title=(
            f"Fig. 8 — mean concurrent jobs per arrival-decile at {load:.0%} load "
            f"[{cells[0].scale}]"
        ),
        headers=["model"]
        + [f"d{decile}" for decile in range(1, _NUM_BUCKETS + 1)]
        + ["avg"],
    )
    raw = {}
    averages = {}
    for cell in cells:
        outcome = outcomes[cell.key]
        label = cell.params["label"]
        series.add_row(
            label, *outcome.payload["buckets"], outcome.payload["average_concurrency"]
        )
        raw[label] = outcome.result
        averages[label] = outcome.payload["average_concurrency"]

    svc_label = cells[0].params["label"]
    ratio = Table(
        title="Fig. 8 — SVC concurrency gain over percentile-VC",
        headers=["metric", "value"],
    )
    pvc = averages["percentile-VC"]
    gain = (averages[svc_label] / pvc - 1.0) * 100.0 if pvc else float("nan")
    ratio.add_row("avg concurrency SVC", averages[svc_label])
    ratio.add_row("avg concurrency percentile-VC", pvc)
    ratio.add_row("SVC gain (%)", gain)
    return ExperimentResult(experiment=EXPERIMENT, tables=[series, ratio], raw=raw)


def run(
    scale="small", seed: int = 0, load: float = DEFAULT_LOAD, epsilon: float = 0.05
) -> ExperimentResult:
    """Reproduce Fig. 8 at the given scale."""
    cells = enumerate_cells(scale=scale, seed=seed, load=load, epsilon=epsilon)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
