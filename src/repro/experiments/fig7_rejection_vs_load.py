"""Fig. 7 — percentage of rejected requests vs. datacenter load.

Jobs arrive as a Poisson process and are dropped if they cannot be allocated
on the spot.  Paper shape: near-zero rejections for everyone at 20% load,
then the ordering mean-VC < SVC(0.05) < SVC(0.02) < percentile-VC — larger
effective reservations reject more, and a tighter risk factor reserves more.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    online_workload,
    resolve_scale,
    simulation_rng,
    standard_variants,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> ExperimentResult:
    """Reproduce Fig. 7 at the given scale."""
    scale = resolve_scale(scale)
    variants = standard_variants(epsilons)
    tree = build_datacenter(scale.spec)

    table = Table(
        title=f"Fig. 7 — rejected requests (%) vs datacenter load [{scale.name}]",
        headers=["model"] + [f"load={load:.0%}" for load in loads],
    )
    raw = {}
    for variant in variants:
        cells = []
        for load in loads:
            specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)
            result = run_online(
                tree,
                specs,
                model=variant.model,
                epsilon=variant.epsilon,
                rng=simulation_rng(seed),
            )
            cells.append(100.0 * result.rejection_rate)
            raw[(variant.label, load)] = result
        table.add_row(variant.label, *cells)
    return ExperimentResult(experiment="fig7", tables=[table], raw=raw)
