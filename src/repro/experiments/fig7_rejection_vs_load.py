"""Fig. 7 — percentage of rejected requests vs. datacenter load.

Jobs arrive as a Poisson process and are dropped if they cannot be allocated
on the spot.  Paper shape: near-zero rejections for everyone at 20% load,
then the ordering mean-VC < SVC(0.05) < SVC(0.02) < percentile-VC — larger
effective reservations reject more, and a tighter risk factor reserves more.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import (
    online_workload,
    resolve_scale,
    simulation_rng,
    standard_variants,
)
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8)

EXPERIMENT = "fig7"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> List[Cell]:
    """One cell per (model variant, datacenter load)."""
    scale = resolve_scale(scale)
    cells = []
    for variant in standard_variants(epsilons):
        for load in loads:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{variant.label}/load={load:g}",
                    scale=scale.name,
                    seed=seed,
                    params={
                        "label": variant.label,
                        "model": variant.model,
                        "epsilon": float(variant.epsilon),
                        "load": float(load),
                    },
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one variant's online arrival stream at one load."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model=params["model"],
        epsilon=params["epsilon"],
        rng=simulation_rng(cell.seed),
    )
    return CellOutcome(
        payload={"rejected_pct": 100.0 * float(result.rejection_rate)}, raw=result
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the Fig. 7 table."""
    loads = ordered_unique(cell.params["load"] for cell in cells)
    table = Table(
        title=f"Fig. 7 — rejected requests (%) vs datacenter load [{cells[0].scale}]",
        headers=["model"] + [f"load={load:.0%}" for load in loads],
    )
    raw = {}
    for label in ordered_unique(cell.params["label"] for cell in cells):
        values = []
        for cell in cells:
            if cell.params["label"] != label:
                continue
            outcome = outcomes[cell.key]
            values.append(outcome.payload["rejected_pct"])
            raw[(label, cell.params["load"])] = outcome.result
        table.add_row(label, *values)
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilons: Sequence[float] = (0.05, 0.02),
) -> ExperimentResult:
    """Reproduce Fig. 7 at the given scale."""
    cells = enumerate_cells(scale=scale, seed=seed, loads=loads, epsilons=epsilons)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
