"""Fig. 10 — request rejection rate: SVC DP vs. adapted TIVC.

Same setup as Fig. 9, reporting the rejection rate per load.  Paper shape:
"SVC and TIVC have almost the same rejection rates" — the occupancy
optimization barely affects the ability to accommodate future requests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.cells import (
    Cell,
    CellOutcome,
    ordered_unique,
    run_cells_sequentially,
)
from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.fig9_occupancy_cdf import ALGORITHMS, _allocator_by_label
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8)

EXPERIMENT = "fig10"


def enumerate_cells(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
) -> List[Cell]:
    """One cell per (occupancy algorithm, load)."""
    scale = resolve_scale(scale)
    cells = []
    for label, _allocator_cls in ALGORITHMS:
        for load in loads:
            cells.append(
                Cell(
                    experiment=EXPERIMENT,
                    key=f"{label}/load={load:g}",
                    scale=scale.name,
                    seed=seed,
                    params={
                        "algorithm": label,
                        "load": float(load),
                        "epsilon": float(epsilon),
                    },
                )
            )
    return cells


def run_cell(cell: Cell) -> CellOutcome:
    """Run one allocator's online stream at one load."""
    scale = resolve_scale(cell.scale)
    params = cell.params
    tree = build_datacenter(scale.spec)
    specs = online_workload(
        scale, cell.seed, load=params["load"], total_slots=tree.total_slots
    )
    result = run_online(
        tree,
        specs,
        model="svc",
        epsilon=params["epsilon"],
        allocator=_allocator_by_label(params["algorithm"]),
        rng=simulation_rng(cell.seed),
    )
    return CellOutcome(
        payload={"rejected_pct": 100.0 * float(result.rejection_rate)}, raw=result
    )


def aggregate(
    cells: Sequence[Cell], outcomes: Dict[str, CellOutcome]
) -> ExperimentResult:
    """Fold cell outcomes back into the Fig. 10 table."""
    loads = ordered_unique(cell.params["load"] for cell in cells)
    table = Table(
        title=f"Fig. 10 — rejected requests (%): SVC vs adapted TIVC [{cells[0].scale}]",
        headers=["algorithm"] + [f"load={load:.0%}" for load in loads],
    )
    raw = {}
    for label in ordered_unique(cell.params["algorithm"] for cell in cells):
        values = []
        for cell in cells:
            if cell.params["algorithm"] != label:
                continue
            outcome = outcomes[cell.key]
            values.append(outcome.payload["rejected_pct"])
            raw[(label, cell.params["load"])] = outcome.result
        table.add_row(label, *values)
    return ExperimentResult(experiment=EXPERIMENT, tables=[table], raw=raw)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
) -> ExperimentResult:
    """Reproduce Fig. 10 at the given scale."""
    cells = enumerate_cells(scale=scale, seed=seed, loads=loads, epsilon=epsilon)
    return aggregate(cells, run_cells_sequentially(cells, run_cell))
