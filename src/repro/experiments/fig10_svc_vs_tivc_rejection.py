"""Fig. 10 — request rejection rate: SVC DP vs. adapted TIVC.

Same setup as Fig. 9, reporting the rejection rate per load.  Paper shape:
"SVC and TIVC have almost the same rejection rates" — the occupancy
optimization barely affects the ability to accommodate future requests.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import online_workload, resolve_scale, simulation_rng
from repro.experiments.fig9_occupancy_cdf import ALGORITHMS
from repro.experiments.tables import ExperimentResult, Table
from repro.simulation.scenario import run_online
from repro.topology.builder import build_datacenter

DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8)


def run(
    scale="small",
    seed: int = 0,
    loads: Sequence[float] = DEFAULT_LOADS,
    epsilon: float = 0.05,
) -> ExperimentResult:
    """Reproduce Fig. 10 at the given scale."""
    scale = resolve_scale(scale)
    tree = build_datacenter(scale.spec)

    table = Table(
        title=f"Fig. 10 — rejected requests (%): SVC vs adapted TIVC [{scale.name}]",
        headers=["algorithm"] + [f"load={load:.0%}" for load in loads],
    )
    raw = {}
    for label, allocator_cls in ALGORITHMS:
        cells = []
        for load in loads:
            specs = online_workload(scale, seed, load=load, total_slots=tree.total_slots)
            result = run_online(
                tree,
                specs,
                model="svc",
                epsilon=epsilon,
                allocator=allocator_cls(),
                rng=simulation_rng(seed),
            )
            cells.append(100.0 * result.rejection_rate)
            raw[(label, load)] = result
        table.add_row(label, *cells)
    return ExperimentResult(experiment="fig10", tables=[table], raw=raw)
