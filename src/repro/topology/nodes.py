"""Node and link value types for the datacenter tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional


class NodeKind(Enum):
    """What a tree vertex physically is."""

    MACHINE = "machine"
    SWITCH = "switch"


@dataclass
class Node:
    """A vertex of the datacenter tree.

    Machines sit at level 0 and own VM slots; switches sit at levels >= 1.
    ``parent is None`` only for the root (core switch).  The uplink of a
    non-root node is the link toward its parent and shares the node's id
    (see :class:`Link`).
    """

    node_id: int
    kind: NodeKind
    level: int
    name: str
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)
    slot_capacity: int = 0

    def __post_init__(self) -> None:
        if self.kind is NodeKind.MACHINE:
            if self.level != 0:
                raise ValueError(f"machine {self.name} must be at level 0, got {self.level}")
            if self.slot_capacity <= 0:
                raise ValueError(f"machine {self.name} must have slots, got {self.slot_capacity}")
        else:
            if self.level <= 0:
                raise ValueError(f"switch {self.name} must be at level >= 1, got {self.level}")
            if self.slot_capacity != 0:
                raise ValueError(f"switch {self.name} cannot own VM slots")

    @property
    def is_machine(self) -> bool:
        return self.kind is NodeKind.MACHINE

    @property
    def is_root(self) -> bool:
        return self.parent is None


@dataclass(frozen=True)
class Link:
    """A physical link — the *uplink* of node ``child`` toward its parent.

    Links are identified by the id of their lower endpoint, which is unique
    in a tree.  ``capacity`` is the full-duplex per-direction capacity in
    Mbps.  Admission bookkeeping treats the link symmetrically (the paper's
    per-link demand ``min(B(m), B(N-m))`` bounds the aggregate in either
    direction); the flow simulator enforces ``capacity`` per direction.
    """

    link_id: int
    child: int
    parent: int
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0.0:
            raise ValueError(f"link capacity must be > 0, got {self.capacity}")
        if self.link_id != self.child:
            raise ValueError("links are keyed by their lower endpoint id")
