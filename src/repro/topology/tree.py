"""The datacenter tree container.

:class:`Tree` is a static (immutable after :meth:`freeze`) rooted tree with
machines at the leaves.  It provides the traversals the allocation algorithms
need (bottom-up level order, machines under a subtree) and the path queries
the flow simulator needs (uplink chains, LCA-based machine-to-machine paths).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.topology.nodes import Link, Node, NodeKind


class Tree:
    """A rooted datacenter tree with capacity-annotated links.

    Nodes are created through :meth:`add_machine` / :meth:`add_switch` and
    wired with :meth:`attach`; :meth:`freeze` validates the topology and
    precomputes traversal indices.  All query methods require a frozen tree.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._links: Dict[int, Link] = {}
        self._root_id: Optional[int] = None
        self._frozen = False
        # Precomputed on freeze:
        self._levels: List[List[int]] = []
        self._machines: List[int] = []
        self._machines_under: Dict[int, Tuple[int, ...]] = {}
        self._uplink_chain: Dict[int, Tuple[int, ...]] = {}
        self._slots_under: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError("tree is frozen; construction is finished")

    def _next_id(self) -> int:
        return len(self._nodes)

    def add_machine(self, name: str, slot_capacity: int) -> int:
        """Add a level-0 machine with ``slot_capacity`` empty VM slots."""
        self._check_mutable()
        node_id = self._next_id()
        self._nodes[node_id] = Node(
            node_id=node_id,
            kind=NodeKind.MACHINE,
            level=0,
            name=name,
            slot_capacity=slot_capacity,
        )
        return node_id

    def add_switch(self, name: str, level: int) -> int:
        """Add a switch at ``level >= 1``."""
        self._check_mutable()
        node_id = self._next_id()
        self._nodes[node_id] = Node(
            node_id=node_id,
            kind=NodeKind.SWITCH,
            level=level,
            name=name,
        )
        return node_id

    def attach(self, child_id: int, parent_id: int, capacity: float) -> Link:
        """Wire ``child`` under ``parent`` with an uplink of ``capacity`` Mbps."""
        self._check_mutable()
        child = self._nodes[child_id]
        parent = self._nodes[parent_id]
        if child.parent is not None:
            raise ValueError(f"node {child.name} already has a parent")
        if parent.level <= child.level:
            raise ValueError(
                f"parent {parent.name} (level {parent.level}) must be above "
                f"child {child.name} (level {child.level})"
            )
        link = Link(link_id=child_id, child=child_id, parent=parent_id, capacity=capacity)
        child.parent = parent_id
        parent.children.append(child_id)
        self._links[child_id] = link
        return link

    def freeze(self) -> "Tree":
        """Validate and index the topology; returns ``self`` for chaining."""
        if self._frozen:
            return self
        roots = [n for n in self._nodes.values() if n.parent is None]
        if len(roots) != 1:
            raise ValueError(f"tree must have exactly one root, found {len(roots)}")
        self._root_id = roots[0].node_id

        height = max(n.level for n in self._nodes.values())
        self._levels = [[] for _ in range(height + 1)]
        for node in self._nodes.values():
            self._levels[node.level].append(node.node_id)
        for level_nodes in self._levels:
            level_nodes.sort()
        self._machines = list(self._levels[0])

        # Reachability check + machines/slots under each subtree (post-order).
        self._machines_under = {}
        self._slots_under = {}
        visited = self._index_subtree(self._root_id)
        if visited != len(self._nodes):
            raise ValueError("tree contains nodes not reachable from the root")

        # Uplink chains (machine -> root) for path queries.
        for machine_id in self._machines:
            chain: List[int] = []
            current: Optional[int] = machine_id
            while current is not None and current != self._root_id:
                chain.append(current)  # link id == lower endpoint id
                current = self._nodes[current].parent
            self._uplink_chain[machine_id] = tuple(chain)

        self._frozen = True
        return self

    def _index_subtree(self, node_id: int) -> int:
        """Post-order indexing; returns the number of nodes in the subtree."""
        node = self._nodes[node_id]
        count = 1
        if node.is_machine:
            self._machines_under[node_id] = (node_id,)
            self._slots_under[node_id] = node.slot_capacity
            return count
        machines: List[int] = []
        slots = 0
        for child_id in node.children:
            count += self._index_subtree(child_id)
            machines.extend(self._machines_under[child_id])
            slots += self._slots_under[child_id]
        self._machines_under[node_id] = tuple(machines)
        self._slots_under[node_id] = slots
        return count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("tree must be frozen before querying")

    @property
    def root_id(self) -> int:
        self._check_frozen()
        assert self._root_id is not None
        return self._root_id

    @property
    def height(self) -> int:
        """Level of the root (machines are level 0)."""
        self._check_frozen()
        return len(self._levels) - 1

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def link(self, link_id: int) -> Link:
        """The uplink of node ``link_id``; raises KeyError for the root."""
        return self._links[link_id]

    def uplink(self, node_id: int) -> Optional[Link]:
        """The uplink of a node, or None for the root."""
        return self._links.get(node_id)

    @property
    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def machine_ids(self) -> Sequence[int]:
        self._check_frozen()
        return self._machines

    @property
    def total_slots(self) -> int:
        """Total VM slots in the datacenter (``M`` in the load formula)."""
        self._check_frozen()
        return self._slots_under[self.root_id]

    @property
    def min_machine_uplink_capacity(self) -> float:
        """The smallest machine NIC rate — per-VM demands can never exceed it."""
        self._check_frozen()
        return min(self._links[machine_id].capacity for machine_id in self._machines)

    def nodes_at_level(self, level: int) -> Sequence[int]:
        self._check_frozen()
        return self._levels[level]

    def bottom_up_levels(self) -> Iterator[Tuple[int, Sequence[int]]]:
        """Yield ``(level, node_ids)`` from the machines up to the root.

        This is the traversal order of Algorithm 1 ("traverses the topology
        tree starting at the leaves").
        """
        self._check_frozen()
        for level, node_ids in enumerate(self._levels):
            yield level, node_ids

    def children(self, node_id: int) -> Sequence[int]:
        return self._nodes[node_id].children

    def machines_under(self, node_id: int) -> Sequence[int]:
        """Machine ids in the subtree rooted at ``node_id``."""
        self._check_frozen()
        return self._machines_under[node_id]

    def slots_under(self, node_id: int) -> int:
        """Total slot capacity in the subtree rooted at ``node_id``."""
        self._check_frozen()
        return self._slots_under[node_id]

    def links_under(self, node_id: int) -> Iterator[Link]:
        """All links strictly inside the subtree rooted at ``node_id``."""
        self._check_frozen()
        stack = list(self._nodes[node_id].children)
        while stack:
            child = stack.pop()
            yield self._links[child]
            stack.extend(self._nodes[child].children)

    def uplink_chain(self, machine_id: int) -> Tuple[int, ...]:
        """Link ids from a machine up to (excluding) the root."""
        self._check_frozen()
        return self._uplink_chain[machine_id]

    def path_links(self, machine_a: int, machine_b: int) -> Tuple[int, ...]:
        """Link ids on the unique path between two machines.

        Empty when both endpoints are the same machine (intra-machine traffic
        uses no network links).  Computed by trimming the common suffix of the
        two uplink chains (the shared ancestors above the LCA).
        """
        self._check_frozen()
        if machine_a == machine_b:
            return ()
        chain_a = self._uplink_chain[machine_a]
        chain_b = self._uplink_chain[machine_b]
        idx_a, idx_b = len(chain_a), len(chain_b)
        while idx_a > 0 and idx_b > 0 and chain_a[idx_a - 1] == chain_b[idx_b - 1]:
            idx_a -= 1
            idx_b -= 1
        return chain_a[:idx_a] + chain_b[:idx_b]

    def describe(self) -> str:
        """Human-readable one-line summary of the topology."""
        self._check_frozen()
        per_level = ", ".join(
            f"L{level}:{len(node_ids)}" for level, node_ids in enumerate(self._levels)
        )
        return (
            f"Tree(height={self.height}, nodes={self.num_nodes}, links={self.num_links}, "
            f"machines={len(self._machines)}, slots={self.total_slots}, [{per_level}])"
        )
