"""Parametric datacenter builders.

The paper's evaluation topology (Section VI-A): a three-level tree with 1,000
machines — racks of 20 machines x 4 VM slots with 1 Gbps machine links, 10
ToRs per aggregation switch, 5 aggregation switches under one core switch.
Upper-level link capacities follow from the oversubscription factor: at
oversubscription 2, ToR uplinks are 10 Gbps (20 Gbps of downstream capacity
halved) and aggregation uplinks are 50 Gbps (100 Gbps halved).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.tree import Tree

GBPS = 1000.0
"""Mbps per Gbps — all bandwidth in this library is in Mbps."""


@dataclass(frozen=True)
class DatacenterSpec:
    """Shape and capacity parameters of a three-level tree datacenter."""

    machines_per_rack: int = 20
    slots_per_machine: int = 4
    racks_per_pod: int = 10
    pods: int = 5
    machine_link_mbps: float = GBPS
    oversubscription: float = 2.0

    def __post_init__(self) -> None:
        if min(self.machines_per_rack, self.slots_per_machine, self.racks_per_pod, self.pods) < 1:
            raise ValueError(f"all shape parameters must be >= 1: {self}")
        if self.machine_link_mbps <= 0.0:
            raise ValueError(f"machine link capacity must be > 0, got {self.machine_link_mbps}")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1 (1 = full bisection), got {self.oversubscription}"
            )

    @property
    def num_machines(self) -> int:
        return self.machines_per_rack * self.racks_per_pod * self.pods

    @property
    def total_slots(self) -> int:
        return self.num_machines * self.slots_per_machine

    @property
    def tor_uplink_mbps(self) -> float:
        """ToR -> aggregation link capacity under the oversubscription factor."""
        return self.machines_per_rack * self.machine_link_mbps / self.oversubscription

    @property
    def agg_uplink_mbps(self) -> float:
        """Aggregation -> core link capacity under the oversubscription factor."""
        return self.racks_per_pod * self.tor_uplink_mbps / self.oversubscription

    def with_oversubscription(self, factor: float) -> "DatacenterSpec":
        """Copy of this spec with a different oversubscription factor (Fig. 5 sweep)."""
        return DatacenterSpec(
            machines_per_rack=self.machines_per_rack,
            slots_per_machine=self.slots_per_machine,
            racks_per_pod=self.racks_per_pod,
            pods=self.pods,
            machine_link_mbps=self.machine_link_mbps,
            oversubscription=factor,
        )


PAPER_SPEC = DatacenterSpec()
"""The paper's 1,000-machine, 4,000-slot topology at oversubscription 2."""

SMALL_SPEC = DatacenterSpec(machines_per_rack=10, racks_per_pod=4, pods=3)
"""120 machines / 480 slots — default for examples and fast experiments."""

TINY_SPEC = DatacenterSpec(machines_per_rack=4, racks_per_pod=2, pods=2)
"""16 machines / 64 slots — unit-test scale."""


def build_datacenter(spec: DatacenterSpec = PAPER_SPEC) -> Tree:
    """Materialize a :class:`DatacenterSpec` into a frozen :class:`Tree`."""
    tree = Tree()
    core = tree.add_switch("core", level=3)
    for pod in range(spec.pods):
        agg = tree.add_switch(f"agg{pod}", level=2)
        tree.attach(agg, core, spec.agg_uplink_mbps)
        for rack in range(spec.racks_per_pod):
            tor = tree.add_switch(f"tor{pod}.{rack}", level=1)
            tree.attach(tor, agg, spec.tor_uplink_mbps)
            for machine in range(spec.machines_per_rack):
                node = tree.add_machine(
                    f"m{pod}.{rack}.{machine}", slot_capacity=spec.slots_per_machine
                )
                tree.attach(node, tor, spec.machine_link_mbps)
    return tree.freeze()


def build_two_machine_example(
    slots_per_machine: int = 5, link_capacity: float = 50.0
) -> Tree:
    """The worked example of Fig. 3: one switch, two machines, 5 slots each.

    Link capacity defaults to 50 (the figure's units) so that the
    ``<N=6, B=10>`` request reproduces the 2+4 vs 3+3 occupancy contrast.
    """
    tree = Tree()
    switch = tree.add_switch("switch", level=1)
    for name in ("A", "B"):
        machine = tree.add_machine(name, slot_capacity=slots_per_machine)
        tree.attach(machine, switch, link_capacity)
    return tree.freeze()
