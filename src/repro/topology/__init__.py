"""Physical datacenter topology substrate.

The paper evaluates on tree-like (multi-rooted tree collapsed to a single
tree, "no path diversity") datacenter topologies: machines grouped into racks
under Top-of-Rack switches, ToRs under aggregation switches, aggregation
switches under a core switch (Section VI-A).

- :mod:`repro.topology.nodes` — node and link value types.
- :mod:`repro.topology.tree` — the :class:`Tree` container with level-order
  traversal, subtree queries, and path/LCA computation for the flow simulator.
- :mod:`repro.topology.builder` — parametric builders, including the paper's
  1,000-machine three-level configuration with oversubscription.
"""

from repro.topology.nodes import Link, Node, NodeKind
from repro.topology.tree import Tree
from repro.topology.builder import (
    DatacenterSpec,
    PAPER_SPEC,
    SMALL_SPEC,
    TINY_SPEC,
    build_datacenter,
    build_two_machine_example,
)

__all__ = [
    "Link",
    "Node",
    "NodeKind",
    "Tree",
    "DatacenterSpec",
    "PAPER_SPEC",
    "SMALL_SPEC",
    "TINY_SPEC",
    "build_datacenter",
    "build_two_machine_example",
]
