"""Network manager: admission control and tenancy lifecycle.

"A network manager, upon receiving a tenant request, performs admission
control and VM allocation in the datacenter with physical links satisfying
the bandwidth requirements in terms of the probabilistic constraint (1)."
(Section III-C.)

The manager owns the authoritative :class:`NetworkState`, delegates placement
to a pluggable :class:`Allocator`, commits successful placements, and tears
them down on release.  Admitted requests are wrapped in :class:`Tenancy`
handles carrying the allocation and the per-VM rate caps for the rate-limit
enforcement plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.abstractions.requests import VirtualClusterRequest
from repro.allocation.base import (
    Allocation,
    Allocator,
    BatchContext,
    expand_vm_placement,
)
from repro.allocation.dispatch import default_allocator
from repro.allocation.resize import plan_in_place, resized_request
from repro.manager.rate_limiter import RateLimiterRegistry
from repro.network.link_state import NetworkState
from repro.topology.tree import Tree

#: Resize outcomes (the ``repro_resize_total`` label values).
RESIZE_IN_PLACE = "in_place"
RESIZE_REPLACED = "replaced"
RESIZE_REJECTED = "rejected"


@dataclass
class Tenancy:
    """An admitted tenant: its allocation plus derived placement views."""

    allocation: Allocation
    #: Machine hosting each VM, indexed by VM number 0..N-1.
    vm_machines: List[int] = field(default_factory=list)

    @property
    def request_id(self) -> int:
        return self.allocation.request_id

    @property
    def request(self) -> VirtualClusterRequest:
        return self.allocation.request

    @property
    def n_vms(self) -> int:
        return self.allocation.request.n_vms


@dataclass(frozen=True)
class ResizeResult:
    """Outcome of one :meth:`NetworkManager.resize` call.

    ``tenancy`` is the tenant's *current* tenancy after the call: the
    resized one for ``in_place``/``replaced``, the untouched original for
    ``rejected`` (the tenant never loses its old allocation).
    """

    outcome: str  # RESIZE_IN_PLACE | RESIZE_REPLACED | RESIZE_REJECTED
    tenancy: "Tenancy"
    detail: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.outcome != RESIZE_REJECTED


class NetworkManager:
    """Admission control + allocation + release for a shared datacenter.

    ``epsilon`` is the provider-wide SLA risk factor of Eq. (1); the default
    0.05 matches the paper's evaluation.  ``allocator`` defaults to the
    paper's system (Algorithm 1 + the substring heuristic) and can be swapped
    for the baselines.
    """

    def __init__(
        self,
        tree: Tree,
        epsilon: float = 0.05,
        allocator: Optional[Allocator] = None,
    ) -> None:
        self.tree = tree
        self.state = NetworkState(tree, epsilon=epsilon)
        self.allocator = allocator if allocator is not None else default_allocator()
        self.rate_limiters = RateLimiterRegistry()
        self._next_id = 1
        self._tenancies: Dict[int, Tenancy] = {}
        self.admitted_count = 0
        self.rejected_count = 0
        #: Which allocator produced the most recent rejection (None before
        #: the first one), and the lifetime per-allocator rejection tally —
        #: surfaced by the admission service's stats endpoint.
        self.last_rejection_allocator: Optional[str] = None
        self.rejections_by_allocator: Dict[str, int] = {}
        #: Lifetime resize tallies by outcome.  Deliberately separate from
        #: ``admitted_count``/``rejected_count``: a resize is not an
        #: admission decision and must never move ``rejection_rate()``.
        self.resize_counts: Dict[str, int] = {
            RESIZE_IN_PLACE: 0,
            RESIZE_REPLACED: 0,
            RESIZE_REJECTED: 0,
        }

    @property
    def epsilon(self) -> float:
        return self.state.epsilon

    @property
    def active_tenancies(self) -> int:
        """Number of tenants currently holding resources (job concurrency)."""
        return len(self._tenancies)

    @property
    def next_request_id(self) -> int:
        """The id the next admitted-or-rejected request will receive."""
        return self._next_id

    @next_request_id.setter
    def next_request_id(self, value: int) -> None:
        if value < self._next_id:
            raise ValueError(
                f"request ids must not move backwards ({value} < {self._next_id})"
            )
        self._next_id = value

    def request(
        self, request: VirtualClusterRequest, batch: Optional[BatchContext] = None
    ) -> Optional[Tenancy]:
        """Admit (place + commit) a tenant request, or reject with None.

        Rejection means no valid allocation exists under the probabilistic
        guarantee — in the online scenario of Section VI-B2 such requests are
        dropped; in the batch scenario they wait in the FIFO queue.

        ``batch`` is an optional :meth:`batch_context` from this manager's
        allocator; when given, the allocate call routes through it so DP
        tables carry over between members of an admission batch.  Decisions
        are unchanged — the context contract requires bit-identical results.
        """
        request_id = self._next_id
        self._next_id += 1
        if batch is not None:
            allocation = batch.allocate(self.state, request, request_id)
        else:
            allocation = self.allocator.allocate(self.state, request, request_id)
        if allocation is None:
            self.rejected_count += 1
            rejected_by = (
                getattr(self.allocator, "last_rejected_by", None) or self.allocator.name
            )
            self.last_rejection_allocator = rejected_by
            self.rejections_by_allocator[rejected_by] = (
                self.rejections_by_allocator.get(rejected_by, 0) + 1
            )
            return None
        self.state.commit(allocation)
        if batch is not None:
            batch.note_commit(self.state, allocation)
        tenancy = Tenancy(
            allocation=allocation, vm_machines=expand_vm_placement(allocation)
        )
        self._tenancies[request_id] = tenancy
        self.rate_limiters.register(tenancy)
        self.admitted_count += 1
        return tenancy

    def batch_context(self) -> BatchContext:
        """A fresh allocator batch context for a run of :meth:`request` calls."""
        return self.allocator.batch_context()

    def adopt(self, allocation: Allocation) -> Tenancy:
        """Install an already-placed allocation, bypassing the allocator.

        Crash recovery replays journaled allocations through this method so
        the reconstructed link state is byte-identical to what ``commit``
        produced before the crash, independent of allocator evolution.
        Admission counters are *not* touched — the recovery layer restores
        them from its own records.
        """
        if allocation.request_id in self._tenancies:
            raise ValueError(f"request {allocation.request_id} is already active")
        self.state.commit(allocation)
        tenancy = Tenancy(
            allocation=allocation, vm_machines=expand_vm_placement(allocation)
        )
        self._tenancies[allocation.request_id] = tenancy
        self.rate_limiters.register(tenancy)
        if allocation.request_id >= self._next_id:
            self._next_id = allocation.request_id + 1
        return tenancy

    def release(self, tenancy: Tenancy) -> None:
        """Return a departing tenant's slots and bandwidth to the pool.

        Atomic: the network state is released *before* the tenancy entry and
        rate limiters are dropped, so a failed ``state.release`` (which is
        itself all-or-nothing) leaves the tenancy fully intact instead of
        stranding link state behind a half-removed tenant.
        """
        stored = self._tenancies.get(tenancy.request_id)
        if stored is None:
            raise KeyError(f"tenancy {tenancy.request_id} is not active")
        self.state.release(stored.allocation)
        del self._tenancies[tenancy.request_id]
        self.rate_limiters.unregister(stored)

    def resize(
        self,
        request_id: int,
        new_n: Optional[int] = None,
        new_mu: Optional[float] = None,
        new_sigma: Optional[float] = None,
    ) -> ResizeResult:
        """Grow or shrink an active tenancy, atomically.

        First attempts an **in-place** resize on the tenant's current
        placement (per-link Eq. 6 delta check via the allocator's
        occupancy-delta query; grow fills the tenant's own machines/racks
        first, shrink releases the highest-index VMs).  When that is
        infeasible, falls back to a full **release + re-admit** through the
        allocator; a rejected fallback restores the old allocation exactly,
        so the tenant never loses what it had.

        Resize outcomes are tallied in :attr:`resize_counts` and never touch
        the admission counters — ``rejection_rate()`` is about admission
        decisions only.
        """
        stored = self._tenancies.get(request_id)
        if stored is None:
            raise KeyError(f"tenancy {request_id} is not active")
        new_request = resized_request(
            stored.request, new_n=new_n, new_mu=new_mu, new_sigma=new_sigma
        )
        if new_request == stored.request:
            # No-op resize: idempotent success without touching any state.
            self.resize_counts[RESIZE_IN_PLACE] += 1
            return ResizeResult(RESIZE_IN_PLACE, stored, detail="no change")
        plan = plan_in_place(self.state, self.allocator, stored.allocation, new_request)
        if plan is not None:
            self.state.release(stored.allocation)
            try:
                self.state.commit(plan.allocation)
            except Exception:
                self.state.commit(stored.allocation)  # all-or-nothing
                raise
            tenancy = self._swap_tenancy(stored, plan.allocation)
            self.resize_counts[RESIZE_IN_PLACE] += 1
            return ResizeResult(RESIZE_IN_PLACE, tenancy)
        # Fallback: atomic release + re-admit.  The allocator may move the
        # tenant anywhere; on rejection the old allocation is re-committed
        # verbatim (the slots it just vacated are necessarily still free).
        self.state.release(stored.allocation)
        allocation = self._allocate_unattributed(new_request, request_id)
        if allocation is None:
            self.state.commit(stored.allocation)
            self.resize_counts[RESIZE_REJECTED] += 1
            return ResizeResult(
                RESIZE_REJECTED, stored, detail="no feasible placement for the resize"
            )
        self.state.commit(allocation)
        tenancy = self._swap_tenancy(stored, allocation)
        self.resize_counts[RESIZE_REPLACED] += 1
        return ResizeResult(RESIZE_REPLACED, tenancy)

    def _swap_tenancy(self, stored: Tenancy, allocation: Allocation) -> Tenancy:
        """Replace a tenancy's record and rate caps with a resized allocation.

        The old caps are unregistered *before* the new ones land: both sets
        share the ``(request_id, vm_index)`` key space, and unregistering
        second would strip the overlapping indices (or, on a shrink, strand
        the high-index residues the registry-residue test hunts for).
        """
        tenancy = Tenancy(
            allocation=allocation, vm_machines=expand_vm_placement(allocation)
        )
        self.rate_limiters.unregister(stored)
        self._tenancies[allocation.request_id] = tenancy
        self.rate_limiters.register(tenancy)
        return tenancy

    def _allocate_unattributed(
        self, request: VirtualClusterRequest, request_id: int
    ) -> Optional[Allocation]:
        """Run the allocator without polluting admission-rejection stats.

        The dispatcher attributes every ``None`` to the allocator that
        produced it; a resize fallback probe is not an admission decision,
        so its rejection is rolled back out of those tallies.
        """
        last = getattr(self.allocator, "last_rejected_by", None)
        counts = getattr(self.allocator, "rejection_counts", None)
        snapshot = dict(counts) if counts is not None else None
        allocation = self.allocator.allocate(self.state, request, request_id)
        if allocation is None and counts is not None:
            counts.clear()
            counts.update(snapshot)
            self.allocator.last_rejected_by = last
        return allocation

    def tenancy(self, request_id: int) -> Tenancy:
        return self._tenancies[request_id]

    def get_tenancy(self, request_id: int) -> Optional[Tenancy]:
        """The active tenancy with this id, or None."""
        return self._tenancies.get(request_id)

    def tenancies(self) -> Iterator[Tenancy]:
        """Iterate over active tenancies in admission (request-id) order."""
        for request_id in sorted(self._tenancies):
            yield self._tenancies[request_id]

    def max_occupancy(self) -> float:
        """``max_L O_L`` over the datacenter (the Fig. 9 statistic)."""
        return self.state.max_occupancy()

    def rejection_rate(self) -> float:
        """Fraction of requests rejected so far (Fig. 7 / Fig. 10 statistic)."""
        total = self.admitted_count + self.rejected_count
        return self.rejected_count / total if total else 0.0
