"""The stochastic cloud network sharing framework (Section III-C).

- :class:`NetworkManager` — admission control + VM allocation + tenancy
  lifecycle over a :class:`~repro.network.link_state.NetworkState`.
- :class:`RateLimiterRegistry` — per-VM rate caps enforcing deterministic
  reservations ("our framework uses the rate limiting component to enforce
  the bandwidth reservation for requests with deterministic bandwidth
  demands"); stochastic tenants are deliberately uncapped.
"""

from repro.manager.network_manager import NetworkManager, Tenancy
from repro.manager.rate_limiter import RateLimiterRegistry

__all__ = ["NetworkManager", "Tenancy", "RateLimiterRegistry"]
