"""Rate-limiting enforcement plane.

"Rate limiting components at end-host hypervisors or switches are used to
enforce the bandwidth reservations ... our framework uses the rate limiting
component to enforce the bandwidth reservation for requests with
deterministic bandwidth demands.  Since SVC statistically shares the
bandwidth ... no fixed bandwidth reservation needs to be enforced for them."
(Section III-C.)

This registry is the control-plane side of that component: it answers, for
every placed VM, the rate cap its hypervisor must enforce — a finite cap for
deterministic VC tenants, ``inf`` (uncapped) for stochastic SVC tenants.
The data plane (the flow simulator) consults it every second.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.abstractions.requests import DeterministicVC

UNLIMITED = math.inf
"""Rate cap of a stochastic (SVC) VM: statistically shared, not reserved."""


class RateLimiterRegistry:
    """Per-VM rate caps, keyed by ``(request_id, vm_index)``."""

    def __init__(self) -> None:
        self._caps: Dict[Tuple[int, int], float] = {}

    def register(self, tenancy) -> None:
        """Install caps for an admitted tenancy."""
        request = tenancy.request
        if isinstance(request, DeterministicVC):
            cap = request.bandwidth
        else:
            cap = UNLIMITED
        for vm_index in range(request.n_vms):
            self._caps[(tenancy.request_id, vm_index)] = cap

    def unregister(self, tenancy) -> None:
        """Remove a departing tenancy's caps."""
        for vm_index in range(tenancy.request.n_vms):
            self._caps.pop((tenancy.request_id, vm_index), None)

    def cap(self, request_id: int, vm_index: int) -> float:
        """The enforced egress cap of one VM (``inf`` when uncapped)."""
        return self._caps.get((request_id, vm_index), UNLIMITED)

    def __len__(self) -> int:
        return len(self._caps)
