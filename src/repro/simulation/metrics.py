"""Result records and summary statistics for the evaluation scenarios."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job in a simulation run.

    ``start_time is None`` means the job was rejected (online scenario);
    ``completion_time is None`` means it was still running when the
    simulation horizon closed.
    """

    job_id: int
    n_vms: int
    submit_time: float
    start_time: Optional[int]
    completion_time: Optional[int]
    compute_time: int

    @property
    def rejected(self) -> bool:
        return self.start_time is None

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def waiting_time(self) -> Optional[float]:
        """Queueing delay before the job started (batch scenario)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def running_time(self) -> Optional[float]:
        """``max(T_c, T_n)`` as realized — completion minus start."""
        if self.start_time is None or self.completion_time is None:
            return None
        return self.completion_time - self.start_time


def summarize_runtimes(records: Sequence[JobRecord]) -> Tuple[float, float]:
    """(average running time, average waiting time) over completed jobs."""
    runtimes: List[float] = []
    waits: List[float] = []
    for record in records:
        runtime = record.running_time
        if runtime is not None:
            runtimes.append(runtime)
            wait = record.waiting_time
            waits.append(wait if wait is not None else 0.0)
    if not runtimes:
        return (float("nan"), float("nan"))
    return (float(np.mean(runtimes)), float(np.mean(waits)))


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted sample values and their cumulative probabilities (Fig. 9)."""
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        return data, data
    probs = np.arange(1, data.size + 1, dtype=float) / data.size
    return data, probs


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples ``<= threshold`` — the Fig. 9 reading aid
    ("SVC has 50% samples less than 0.996")."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return float("nan")
    return float(np.mean(data <= threshold))
