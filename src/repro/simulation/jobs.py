"""Job and flow models for the evaluation workload.

"Each job is modeled as a set of tasks to be run on individual VMs and a set
of flows of uniform length (L) between tasks.  Each task is a source and a
destination for one flow.  The completion time of a job is max(T_c, T_n)
where T_c is the job's compute time and T_n is the time for the last flow to
finish." (Section VI-A.)

The unique simple pattern in which every task is exactly one source and one
destination is a ring permutation: task ``i`` sends one flow of ``L`` Mbit to
task ``(i + 1) mod N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.abstractions.requests import DeterministicVC
from repro.manager.network_manager import Tenancy


@dataclass(frozen=True)
class JobSpec:
    """A tenant job before placement.

    ``mean_rate``/``std_rate`` parameterize the per-second data-generation
    rate ``Normal(mu_d, sigma_d^2)`` of each source task; ``flow_volume`` is
    the uniform flow length ``L`` in Mbit; ``compute_time`` is ``T_c`` in
    seconds.  ``vm_rates`` optionally carries per-VM ``(mu, sigma)`` pairs for
    heterogeneous jobs (``mean_rate``/``std_rate`` then hold their averages).
    """

    job_id: int
    n_vms: int
    compute_time: int
    mean_rate: float
    std_rate: float
    flow_volume: float
    submit_time: float = 0.0
    vm_rates: Optional[Tuple[Tuple[float, float], ...]] = None

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise ValueError(f"a job needs at least one VM, got {self.n_vms}")
        if self.compute_time < 0:
            raise ValueError(f"compute time must be >= 0, got {self.compute_time}")
        if self.mean_rate < 0 or self.std_rate < 0:
            raise ValueError("rate parameters must be >= 0")
        if self.flow_volume < 0:
            raise ValueError(f"flow volume must be >= 0, got {self.flow_volume}")
        if self.vm_rates is not None and len(self.vm_rates) != self.n_vms:
            raise ValueError("vm_rates must have one (mu, sigma) pair per VM")

    @property
    def is_heterogeneous(self) -> bool:
        return self.vm_rates is not None

    def rate_of_vm(self, vm_index: int) -> Tuple[float, float]:
        """``(mu_d, sigma_d)`` of one source task's data-generation rate."""
        if self.vm_rates is not None:
            return self.vm_rates[vm_index]
        return (self.mean_rate, self.std_rate)

    def ring_flows(self) -> List[Tuple[int, int]]:
        """The (source VM, destination VM) pairs of the ring pattern."""
        if self.n_vms < 2:
            return []
        return [(i, (i + 1) % self.n_vms) for i in range(self.n_vms)]


@dataclass
class ActiveJob:
    """A placed, running job tracked by the data plane."""

    spec: JobSpec
    tenancy: Tenancy
    start_time: int
    #: Per-flow remaining volume in Mbit (ring order).
    remaining: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Per-flow (source machine, destination machine).
    flow_machines: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-flow (mu_d, sigma_d) of the source's data-generation rate.
    flow_rates: List[Tuple[float, float]] = field(default_factory=list)
    #: Per-flow rate cap enforced by the hypervisor (inf when uncapped).
    flow_caps: List[float] = field(default_factory=list)
    network_end: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.remaining) == 0:
            flows = self.spec.ring_flows()
            machines = self.tenancy.vm_machines
            self.remaining = np.full(len(flows), self.spec.flow_volume, dtype=float)
            self.flow_machines = [(machines[src], machines[dst]) for src, dst in flows]
            self.flow_rates = [self.spec.rate_of_vm(src) for src, _dst in flows]
            cap = self._vm_cap()
            self.flow_caps = [cap] * len(flows)
            if len(flows) == 0:
                self.network_end = self.start_time

    def _vm_cap(self) -> float:
        """Rate cap per source VM: the reserved bandwidth for deterministic VC."""
        if isinstance(self.tenancy.request, DeterministicVC):
            return self.tenancy.request.bandwidth
        return float("inf")

    @property
    def compute_end(self) -> int:
        """Time at which ``T_c`` elapses."""
        return self.start_time + self.spec.compute_time

    @property
    def network_done(self) -> bool:
        return self.network_end is not None

    def completion_time(self) -> Optional[int]:
        """``max(T_c, T_n)`` as an absolute time, if the network phase ended."""
        if self.network_end is None:
            return None
        return max(self.compute_end, self.network_end)
