"""Demand-bounded max-min fair bandwidth sharing.

Given per-flow demands and the set of (directed) links each flow crosses,
compute the classic water-filling allocation: rates are raised together until
a link saturates; flows bottlenecked there freeze at the fair share, flows
whose demand is below every fair share freeze at their demand, and the
process repeats on the residual network.

This is the fluid model under which the simulator advances flows each second.
Deterministic-VC flows arrive here already capped at their reservation, so
their aggregate can never congest a link (the reservations fit by admission);
SVC flows are uncapped and *can* congest — that is exactly the epsilon-risk
the probabilistic guarantee quantifies.

The implementation is fully vectorized: flow-to-link incidence is a flat
CSR-like pair of arrays, per-link member counts come from ``np.bincount``,
and per-flow minimum shares from ``np.minimum.reduceat``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_TOLERANCE = 1e-9
_MAX_ROUNDS = 10_000


def max_min_fair_rates(
    demands: np.ndarray,
    link_of_entry: np.ndarray,
    flow_ptr: np.ndarray,
    capacities: np.ndarray,
) -> np.ndarray:
    """Water-filling rates for ``F`` flows over ``L`` capacity-bounded links.

    Parameters
    ----------
    demands:
        Length-``F`` nonnegative demand of each flow (Mbps this second).
    link_of_entry:
        Flat concatenation of each flow's link indices (CSR data).
    flow_ptr:
        Length ``F + 1`` offsets into ``link_of_entry`` (CSR indptr).  A flow
        with an empty segment crosses no links and gets its full demand.
    capacities:
        Length-``L`` per-link capacity.

    Returns
    -------
    Length-``F`` rates with ``0 <= rate <= demand``, saturating no link
    beyond its capacity (up to float tolerance), and max-min fair: a flow's
    rate is below its demand only if it crosses a saturated link on which no
    other flow receives more.
    """
    num_flows = len(demands)
    rates = np.zeros(num_flows)
    if num_flows == 0:
        return rates

    demands = np.asarray(demands, dtype=float)
    link_of_entry = np.asarray(link_of_entry)
    flow_ptr = np.asarray(flow_ptr)
    if len(flow_ptr) != num_flows + 1:
        raise ValueError("flow_ptr must have one offset per flow plus a terminator")

    entry_counts = np.diff(flow_ptr)
    flow_of_entry = np.repeat(np.arange(num_flows), entry_counts)
    # reduceat segment offsets for flows that actually cross links: each has
    # at least one entry, so consecutive offsets are strictly increasing and
    # the reduceat segments are exactly the flows' entry ranges.
    has_links = entry_counts > 0
    linked_flow_ids = np.flatnonzero(has_links)
    linked_offsets = flow_ptr[:-1][has_links]

    residual = np.asarray(capacities, dtype=float).copy()
    unfrozen = demands > _TOLERANCE
    # Linkless flows (and zero-demand flows) are settled immediately.
    linkless = entry_counts == 0
    rates[linkless] = demands[linkless]
    unfrozen &= ~linkless

    num_links = len(residual)
    for _ in range(_MAX_ROUNDS):
        if not unfrozen.any():
            break
        active_entries = unfrozen[flow_of_entry]
        counts = np.bincount(
            link_of_entry, weights=active_entries.astype(float), minlength=num_links
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(counts > 0.0, residual / counts, np.inf)
        share = np.maximum(share, 0.0)

        entry_share = share[link_of_entry]
        # Per-flow minimum share across its links (inf for frozen entries and
        # for flows with no entries at all).
        entry_share = np.where(active_entries, entry_share, np.inf)
        per_flow_share = np.full(num_flows, np.inf)
        if linked_flow_ids.size:
            per_flow_share[linked_flow_ids] = np.minimum.reduceat(
                entry_share, linked_offsets
            )
        per_flow_share = np.where(unfrozen, per_flow_share, np.inf)

        fill_level = min(
            float(per_flow_share[unfrozen].min()), float(demands[unfrozen].min())
        )
        # Freeze demand-satisfied flows at their demand and bottlenecked
        # flows at their limiting share; at least one flow always freezes.
        newly = unfrozen & (
            (demands <= fill_level + _TOLERANCE)
            | (per_flow_share <= fill_level + _TOLERANCE)
        )
        if not newly.any():  # numerical stall guard
            newly = unfrozen & (per_flow_share <= per_flow_share[unfrozen].min() + _TOLERANCE)
        new_rates = np.minimum(demands, per_flow_share)
        rates[newly] = new_rates[newly]

        newly_entries = newly[flow_of_entry]
        if newly_entries.any():
            consumed = np.bincount(
                link_of_entry[newly_entries],
                weights=rates[flow_of_entry[newly_entries]],
                minlength=num_links,
            )
            residual = np.maximum(residual - consumed, 0.0)
        unfrozen &= ~newly
    else:
        raise RuntimeError("max-min fair computation failed to converge")

    return rates


def build_incidence(
    flow_paths,
    num_links: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack per-flow link-index lists into the CSR pair used above.

    ``flow_paths`` is an iterable of sequences of link indices (may be
    empty).  Returns ``(link_of_entry, flow_ptr)``.
    """
    flat = []
    ptr = [0]
    for path in flow_paths:
        flat.extend(path)
        ptr.append(len(flat))
    link_of_entry = np.asarray(flat, dtype=np.int64)
    if link_of_entry.size and (link_of_entry.min() < 0 or link_of_entry.max() >= num_links):
        raise ValueError("flow path contains an out-of-range link index")
    return link_of_entry, np.asarray(ptr, dtype=np.int64)
