"""Flow-level datacenter simulator (the paper's evaluation substrate).

The evaluation of Section VI runs tenant jobs — each a set of tasks on VMs
plus a ring of equal-length flows between them — on the shared datacenter
network, changing every source's data-generation rate each second.  This
subpackage is that simulator:

- :mod:`repro.simulation.jobs` — job/flow models;
- :mod:`repro.simulation.workload` — the Section VI-A workload generator and
  the abstraction adapters (mean-VC, percentile-VC, SVC);
- :mod:`repro.simulation.maxmin` — demand-bounded max-min fair bandwidth
  sharing on directed tree links;
- :mod:`repro.simulation.engine` — the time-stepped data plane;
- :mod:`repro.simulation.scenario` — the batched-jobs and dynamically-
  arriving-jobs drivers (Sections VI-B1 and VI-B2);
- :mod:`repro.simulation.metrics` — result records and summary statistics.
"""

from repro.simulation.jobs import ActiveJob, JobSpec
from repro.simulation.workload import (
    ABSTRACTION_MODELS,
    WorkloadConfig,
    generate_jobs,
    make_request,
)
from repro.simulation.maxmin import max_min_fair_rates
from repro.simulation.engine import DataPlane
from repro.simulation.scenario import (
    BatchResult,
    OnlineResult,
    run_batch,
    run_online,
)
from repro.simulation.metrics import JobRecord, empirical_cdf, summarize_runtimes

__all__ = [
    "ActiveJob",
    "JobSpec",
    "ABSTRACTION_MODELS",
    "WorkloadConfig",
    "generate_jobs",
    "make_request",
    "max_min_fair_rates",
    "DataPlane",
    "BatchResult",
    "OnlineResult",
    "run_batch",
    "run_online",
    "JobRecord",
    "empirical_cdf",
    "summarize_runtimes",
]
