"""Workload generation (Section VI-A) and abstraction adapters.

Job sizes are exponentially distributed around a mean of 49 (as in Oktopus);
compute times are uniform on [200, 500] s; each job's mean data-generation
rate ``mu_d`` is drawn from {100, ..., 500} Mbps and its standard deviation is
``sigma_d = rho * mu_d`` with the deviation coefficient ``rho`` drawn from
(0, 1) unless fixed (the Fig. 6 sweep).  Flow length is per-job calibrated as
``L = mu_d * U[200, 500] s`` so the mean network transfer time is comparable
to the compute time (see DESIGN.md, substitutions).

The abstraction adapters derive the tenant request from the demand
distribution exactly as the paper's "Alternate abstractions" paragraph:
*mean-VC* reserves the mean, *percentile-VC* the 95th percentile, and *SVC*
passes the distribution itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abstractions.requests import (
    DeterministicVC,
    HeterogeneousSVC,
    HomogeneousSVC,
    VirtualClusterRequest,
)
from repro.simulation.jobs import JobSpec
from repro.stochastic.normal import Normal, truncated_moments

ABSTRACTION_MODELS = ("mean-vc", "percentile-vc", "svc")
"""The three abstractions compared in Figs. 5-8."""


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the Section VI-A workload generator.

    ``deviation`` fixes the per-job deviation coefficient ``rho``; None draws
    it uniformly from (0, 1) per job (the paper's default).  ``heterogeneous``
    draws an independent ``(mu, sigma)`` per VM (Section V workloads).
    """

    num_jobs: int = 500
    mean_job_size: float = 49.0
    min_job_size: int = 2
    max_job_size: int = 200
    compute_time_range: Tuple[int, int] = (200, 500)
    rate_choices: Sequence[float] = (100.0, 200.0, 300.0, 400.0, 500.0)
    deviation: Optional[float] = None
    network_time_range: Tuple[int, int] = (200, 500)
    heterogeneous: bool = False

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if not 1 <= self.min_job_size <= self.max_job_size:
            raise ValueError(
                f"need 1 <= min_job_size <= max_job_size, got "
                f"[{self.min_job_size}, {self.max_job_size}]"
            )
        if self.deviation is not None and not 0.0 <= self.deviation <= 1.0:
            raise ValueError(f"deviation coefficient must be in [0, 1], got {self.deviation}")
        lo, hi = self.compute_time_range
        if not 0 <= lo <= hi:
            raise ValueError(f"bad compute time range {self.compute_time_range}")
        lo, hi = self.network_time_range
        if not 0 <= lo <= hi:
            raise ValueError(f"bad network time range {self.network_time_range}")

    @property
    def mean_compute_time(self) -> float:
        lo, hi = self.compute_time_range
        return (lo + hi) / 2.0


def generate_jobs(config: WorkloadConfig, rng: np.random.Generator) -> List[JobSpec]:
    """Draw ``config.num_jobs`` independent job specifications."""
    specs: List[JobSpec] = []
    for job_id in range(config.num_jobs):
        n_vms = int(round(rng.exponential(config.mean_job_size)))
        n_vms = int(np.clip(n_vms, config.min_job_size, config.max_job_size))
        compute_time = int(rng.integers(*config.compute_time_range, endpoint=True))
        rho = config.deviation if config.deviation is not None else float(rng.uniform(0.0, 1.0))
        network_time = float(rng.integers(*config.network_time_range, endpoint=True))

        vm_rates: Optional[Tuple[Tuple[float, float], ...]] = None
        if config.heterogeneous:
            mus = rng.choice(config.rate_choices, size=n_vms)
            vm_rates = tuple((float(mu), float(rho * mu)) for mu in mus)
            mean_rate = float(np.mean([mu for mu, _ in vm_rates]))
            std_rate = float(np.mean([sd for _, sd in vm_rates]))
        else:
            mean_rate = float(rng.choice(config.rate_choices))
            std_rate = rho * mean_rate
        specs.append(
            JobSpec(
                job_id=job_id,
                n_vms=n_vms,
                compute_time=compute_time,
                mean_rate=mean_rate,
                std_rate=std_rate,
                flow_volume=mean_rate * network_time,
                vm_rates=vm_rates,
            )
        )
    return specs


def assign_poisson_arrivals(
    specs: Sequence[JobSpec],
    load: float,
    total_slots: int,
    mean_job_size: float,
    mean_compute_time: float,
    rng: np.random.Generator,
) -> List[JobSpec]:
    """Stamp Poisson arrival times for a target datacenter load.

    "The job arrival follows a Poisson process with rate lambda, then the
    load on a datacenter with M total VMs is rho = lambda * N * T_c / M"
    (Section VI-B2) — solved for lambda given the desired load.
    Arrival times are floored to whole seconds (the simulator's step).
    """
    if not 0.0 < load:
        raise ValueError(f"load must be positive, got {load}")
    lam = load * total_slots / (mean_job_size * mean_compute_time)
    gaps = rng.exponential(1.0 / lam, size=len(specs))
    arrival = 0.0
    stamped: List[JobSpec] = []
    for spec, gap in zip(specs, gaps):
        arrival += gap
        stamped.append(replace(spec, submit_time=float(int(arrival))))
    return stamped


def _profiled_demand(mean: float, std: float, rate_cap: Optional[float]) -> Normal:
    """The demand distribution a tenant derives from its usage profile.

    A VM's observable bandwidth usage is NIC-limited, so the profile the
    tenant fits lives in ``[0, rate_cap]``; we moment-match the raw
    generation-rate normal truncated to that interval (no-op when
    ``rate_cap`` is None).  Without this, any job with
    ``mu + 1.645 sigma > nic`` would be categorically unsatisfiable for both
    SVC and percentile-VC, which contradicts the paper's near-zero rejection
    at low load (see DESIGN.md, substitutions).
    """
    demand = Normal(mean, std)
    if rate_cap is None or demand.is_deterministic:
        return demand
    return truncated_moments(demand, 0.0, rate_cap)


def make_request(
    spec: JobSpec,
    model: str,
    percentile: float = 95.0,
    rate_cap: Optional[float] = None,
) -> VirtualClusterRequest:
    """Derive the tenant request a job submits under a given abstraction.

    ``rate_cap`` is the per-VM NIC rate (machine uplink capacity); the
    request statistics are derived from the NIC-truncated profile so that,
    e.g., percentile-VC never requests more bandwidth than a NIC can carry.
    """
    if model not in ABSTRACTION_MODELS:
        raise ValueError(f"unknown abstraction model {model!r}; choose from {ABSTRACTION_MODELS}")
    if spec.is_heterogeneous:
        return _make_heterogeneous_request(spec, model, percentile, rate_cap)
    demand = _profiled_demand(spec.mean_rate, spec.std_rate, rate_cap)
    if model == "mean-vc":
        return DeterministicVC(n_vms=spec.n_vms, bandwidth=demand.mean)
    if model == "percentile-vc":
        return DeterministicVC(n_vms=spec.n_vms, bandwidth=demand.percentile(percentile))
    return HomogeneousSVC(n_vms=spec.n_vms, mean=demand.mean, std=demand.std)


def _make_heterogeneous_request(
    spec: JobSpec, model: str, percentile: float, rate_cap: Optional[float]
) -> VirtualClusterRequest:
    """Heterogeneous variants: SVC keeps per-VM distributions; the VC
    baselines collapse them to one conservative constant (max over VMs of the
    respective statistic), the natural hose-model embedding."""
    assert spec.vm_rates is not None
    demands = tuple(_profiled_demand(mu, sd, rate_cap) for mu, sd in spec.vm_rates)
    if model == "svc":
        return HeterogeneousSVC(n_vms=spec.n_vms, demands=demands)
    if model == "mean-vc":
        bandwidth = max(demand.mean for demand in demands)
    else:
        bandwidth = max(demand.percentile(percentile) for demand in demands)
    return DeterministicVC(n_vms=spec.n_vms, bandwidth=bandwidth)
