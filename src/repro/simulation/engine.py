"""The time-stepped data plane.

Advances all active flows second by second: every step, each source task
draws a fresh data-generation rate from its ``Normal(mu_d, sigma_d^2)``
(negative draws clip to zero), deterministic-VC sources are clipped to their
reserved rate (the rate-limiting component), and the resulting demands are
pushed through demand-bounded max-min fair sharing over the directed link
capacities.  Transferred volume is integrated with a 1-second fluid step —
the same granularity at which the paper varies the rates.

Links are full duplex: link ``l`` (the uplink of node ``l``) contributes two
directed capacity entries, ``2l`` for the upward direction and ``2l + 1`` for
the downward direction.  A flow from machine ``a`` to machine ``b`` climbs
``a``'s uplink chain to the LCA (upward entries) and descends ``b``'s chain
(downward entries).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.obs.instruments import outage_monitor
from repro.simulation.jobs import ActiveJob
from repro.simulation.maxmin import build_incidence, max_min_fair_rates
from repro.topology.tree import Tree


def directed_path(tree: Tree, machine_a: int, machine_b: int) -> List[int]:
    """Directed link indices (``2l`` up / ``2l + 1`` down) between machines."""
    if machine_a == machine_b:
        return []
    chain_a = tree.uplink_chain(machine_a)
    chain_b = tree.uplink_chain(machine_b)
    idx_a, idx_b = len(chain_a), len(chain_b)
    while idx_a > 0 and idx_b > 0 and chain_a[idx_a - 1] == chain_b[idx_b - 1]:
        idx_a -= 1
        idx_b -= 1
    upward = [2 * link for link in chain_a[:idx_a]]
    downward = [2 * link + 1 for link in chain_b[:idx_b]]
    return upward + downward


class DataPlane:
    """Vectorized flow advancement over one datacenter tree."""

    def __init__(
        self, tree: Tree, rng: np.random.Generator, track_outages: bool = False
    ) -> None:
        self.tree = tree
        self.rng = rng
        self._num_directed = 2 * tree.num_nodes
        self._capacities = np.zeros(self._num_directed)
        for link in tree.links:
            self._capacities[2 * link.link_id] = link.capacity
            self._capacities[2 * link.link_id + 1] = link.capacity
        self._jobs: Dict[int, ActiveJob] = {}
        self._dirty = True
        # Optional outage instrumentation (validation of Eq. 1): per
        # directed link, how many seconds it carried load and in how many of
        # those the offered demand exceeded capacity.  The same per-step
        # tallies feed the process-global empirical outage monitor, so the
        # measured violation rate is comparable against epsilon live on the
        # metrics endpoint.
        self._track_outages = track_outages
        self._outage_monitor = outage_monitor() if track_outages else None
        self._loaded_seconds = np.zeros(self._num_directed, dtype=np.int64)
        self._outage_seconds = np.zeros(self._num_directed, dtype=np.int64)
        # Flattened per-flow arrays over all active jobs (rebuilt lazily):
        self._flow_job: np.ndarray = np.zeros(0, dtype=np.int64)
        self._flow_index: np.ndarray = np.zeros(0, dtype=np.int64)
        self._flow_mean: np.ndarray = np.zeros(0)
        self._flow_std: np.ndarray = np.zeros(0)
        self._flow_cap: np.ndarray = np.zeros(0)
        self._flow_remaining: np.ndarray = np.zeros(0)
        self._link_of_entry: np.ndarray = np.zeros(0, dtype=np.int64)
        self._flow_of_entry: np.ndarray = np.zeros(0, dtype=np.int64)
        self._flow_ptr: np.ndarray = np.zeros(1, dtype=np.int64)
        self._job_order: List[int] = []
        self._unfinished_count: Dict[int, int] = {}

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def job(self, job_id: int) -> ActiveJob:
        return self._jobs[job_id]

    def start_job(self, job: ActiveJob) -> None:
        """Register a placed job; its flows join the shared network."""
        job_id = job.spec.job_id
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} is already active")
        self._mark_dirty()
        self._jobs[job_id] = job

    def remove_job(self, job_id: int) -> ActiveJob:
        """Withdraw a completed job's flows.

        Membership is checked *before* the plane is flagged dirty, so a
        failed remove leaves the incidence (and any in-flight progress)
        untouched instead of forcing a spurious rebuild.
        """
        if job_id not in self._jobs:
            raise ValueError(
                f"job {job_id} is not active on this data plane "
                f"({len(self._jobs)} active jobs)"
            )
        self._mark_dirty()
        job = self._jobs.pop(job_id)
        return job

    def _mark_dirty(self) -> None:
        """Flag the incidence stale, saving in-flight progress exactly once.

        The flat arrays are only advanced while clean (``step`` rebuilds
        before integrating), so the clean-to-dirty transition is the one
        moment they are both current and about to be abandoned.
        """
        if not self._dirty:
            self._writeback()
            self._dirty = True

    def _writeback(self) -> None:
        """Scatter in-flight progress back into the jobs' remaining arrays."""
        for position in range(len(self._flow_job)):
            job_id = int(self._flow_job[position])
            job = self._jobs.get(job_id)
            if job is not None:
                job.remaining[self._flow_index[position]] = max(
                    float(self._flow_remaining[position]), 0.0
                )

    def _rebuild(self) -> None:
        """Re-flatten the per-flow arrays after the active set changed.

        Only unfinished flows participate; finished flows of still-running
        jobs are dropped from the incidence entirely.
        """
        self._job_order = sorted(self._jobs)
        flow_job: List[int] = []
        flow_index: List[int] = []
        means: List[float] = []
        stds: List[float] = []
        caps: List[float] = []
        paths: List[List[int]] = []
        for job_id in self._job_order:
            job = self._jobs[job_id]
            for flow_idx in range(len(job.remaining)):
                if job.remaining[flow_idx] <= 0.0:
                    continue
                flow_job.append(job_id)
                flow_index.append(flow_idx)
                mu, sigma = job.flow_rates[flow_idx]
                means.append(mu)
                stds.append(sigma)
                caps.append(job.flow_caps[flow_idx])
                src, dst = job.flow_machines[flow_idx]
                paths.append(directed_path(self.tree, src, dst))
        self._flow_job = np.asarray(flow_job, dtype=np.int64)
        self._flow_index = np.asarray(flow_index, dtype=np.int64)
        self._flow_mean = np.asarray(means)
        self._flow_std = np.asarray(stds)
        self._flow_cap = np.asarray(caps)
        self._flow_remaining = np.array(
            [
                self._jobs[job_id].remaining[flow_idx]
                for job_id, flow_idx in zip(flow_job, flow_index)
            ]
        )
        self._unfinished_count = {job_id: 0 for job_id in self._job_order}
        for job_id in flow_job:
            self._unfinished_count[job_id] += 1
        self._link_of_entry, self._flow_ptr = build_incidence(paths, self._num_directed)
        self._flow_of_entry = np.repeat(
            np.arange(len(flow_job)), np.diff(self._flow_ptr)
        )
        self._dirty = False

    def step(self, now: int) -> List[int]:
        """Advance one second ending at ``now + 1``.

        Samples demands, computes max-min fair rates, integrates transferred
        volume, and returns the ids of jobs whose *network phase* finished
        during this step (their ``network_end`` is set to ``now + 1``).

        Individual finished flows stay in the incidence with zero demand
        until the next rebuild; the incidence is only rebuilt when a job
        starts or ends.
        """
        if self._dirty:
            self._rebuild()
        finished: List[int] = []
        if len(self._flow_job) == 0:
            return finished

        demands = self.rng.normal(self._flow_mean, self._flow_std)
        np.clip(demands, 0.0, None, out=demands)
        np.minimum(demands, self._flow_cap, out=demands)
        alive = self._flow_remaining > 1e-9
        demands[~alive] = 0.0
        if self._track_outages:
            offered = np.bincount(
                self._link_of_entry,
                weights=demands[self._flow_of_entry],
                minlength=self._num_directed,
            )
            loaded = offered > 1e-9
            violated = loaded & (offered > self._capacities + 1e-9)
            self._loaded_seconds[loaded] += 1
            self._outage_seconds[violated] += 1
            self._outage_monitor.record(
                int(np.count_nonzero(violated)), int(np.count_nonzero(loaded))
            )
        rates = max_min_fair_rates(
            demands, self._link_of_entry, self._flow_ptr, self._capacities
        )

        self._flow_remaining -= rates
        newly_done = alive & (self._flow_remaining <= 1e-9)
        for position in np.flatnonzero(newly_done):
            job_id = int(self._flow_job[position])
            job = self._jobs[job_id]
            job.remaining[self._flow_index[position]] = 0.0
            self._unfinished_count[job_id] -= 1
            if self._unfinished_count[job_id] == 0 and job.network_end is None:
                job.network_end = now + 1
                finished.append(job_id)
        if finished:
            self._mark_dirty()  # their flows leave the incidence
        return finished

    def outage_statistics(self) -> Tuple[int, int]:
        """``(outage link-seconds, loaded link-seconds)`` since construction.

        Only meaningful with ``track_outages=True``.  The ratio is the
        empirical counterpart of the per-link outage probability Eq. (1)
        bounds by ``epsilon``: among all (directed link, second) pairs where
        stochastic demand was offered, how often did it exceed capacity?
        """
        return int(self._outage_seconds.sum()), int(self._loaded_seconds.sum())

    def remaining_volume(self, job_id: int) -> np.ndarray:
        """Up-to-date per-flow remaining volume of an active job.

        ``ActiveJob.remaining`` is only synchronized at job-set changes (the
        flat arrays carry the live values between rebuilds); this accessor
        always returns current numbers.
        """
        job = self._jobs[job_id]
        if self._dirty:
            return job.remaining.copy()
        current = job.remaining.copy()
        mask = self._flow_job == job_id
        current[self._flow_index[mask]] = np.maximum(self._flow_remaining[mask], 0.0)
        return current

    def utilization_snapshot(self) -> np.ndarray:
        """Current per-directed-link capacity array (for tests/diagnostics)."""
        return self._capacities.copy()
