"""The two evaluation scenarios of Section VI-B.

- :func:`run_batch` — "a large batch of tenant jobs placed in a FIFO queue
  waiting to be allocated to run ... once a job completes, the topmost
  job(s) that can be allocated is scheduled to run" (strict FIFO with
  head-of-line blocking, as in Oktopus).
- :func:`run_online` — "tenant jobs dynamically arrive over time and are
  accepted only if they can be allocated at the moment of arrival";
  concurrency and max-occupancy are sampled at every arrival (Figs. 7-10).

Both drivers share the same inner loop: at each whole second, first retire
jobs whose ``max(T_c, T_n)`` elapsed (returning their slots and bandwidth),
then admit/start what the policy allows, then advance the data plane by one
second.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.allocation.base import Allocator
from repro.allocation.dispatch import default_allocator
from repro.allocation.svc_homogeneous import OktopusAllocator
from repro.manager.network_manager import NetworkManager
from repro.obs.instruments import outage_monitor
from repro.simulation.engine import DataPlane
from repro.simulation.jobs import ActiveJob, JobSpec
from repro.simulation.metrics import JobRecord, summarize_runtimes
from repro.simulation.workload import make_request


def _resolve_rate_cap(tree, rate_cap):
    """Resolve the per-VM NIC cap used to derive request statistics.

    ``"nic"`` (the default) uses the smallest machine uplink capacity;
    ``None`` disables the truncation (raw paper distributions); a number is
    used verbatim.
    """
    if rate_cap == "nic":
        return tree.min_machine_uplink_capacity
    return rate_cap


@dataclass
class BatchResult:
    """Outcome of a batched-jobs run (Figs. 5-6)."""

    records: List[JobRecord]
    makespan: int
    unschedulable: List[int] = field(default_factory=list)

    @property
    def total_completion_time(self) -> int:
        """Completion time of the whole batch (the Fig. 5 metric)."""
        return self.makespan

    @property
    def average_running_time(self) -> float:
        """Average per-job running time (the Fig. 6 metric)."""
        runtime, _wait = summarize_runtimes(self.records)
        return runtime

    @property
    def average_waiting_time(self) -> float:
        _runtime, wait = summarize_runtimes(self.records)
        return wait


@dataclass
class OnlineResult:
    """Outcome of a dynamically-arriving-jobs run (Figs. 7-10)."""

    records: List[JobRecord]
    num_arrivals: int
    num_rejected: int
    #: ``(arrival time, jobs already running)`` sampled at each arrival (Fig. 8).
    concurrency_samples: List[Tuple[float, int]] = field(default_factory=list)
    #: ``(arrival time, max_L O_L)`` sampled after each arrival's admission (Fig. 9).
    occupancy_samples: List[Tuple[float, float]] = field(default_factory=list)
    #: Outage instrumentation (only populated with ``track_outages=True``):
    #: (directed link, second) pairs where offered demand exceeded capacity,
    #: and pairs where any demand was offered at all.
    outage_link_seconds: int = 0
    loaded_link_seconds: int = 0
    #: Per-arrival mean occupancy by tree level (with ``track_levels=True``):
    #: list of (arrival time, {level: mean O_L of that level's uplinks}).
    level_occupancy_samples: List[Tuple[float, Dict[int, float]]] = field(
        default_factory=list
    )

    @property
    def rejection_rate(self) -> float:
        """Fraction of arrivals rejected (the Fig. 7 / Fig. 10 metric)."""
        return self.num_rejected / self.num_arrivals if self.num_arrivals else 0.0

    @property
    def average_running_time(self) -> float:
        runtime, _wait = summarize_runtimes(self.records)
        return runtime

    @property
    def average_concurrency(self) -> float:
        if not self.concurrency_samples:
            return 0.0
        return float(np.mean([count for _t, count in self.concurrency_samples]))

    @property
    def max_occupancies(self) -> List[float]:
        return [occ for _t, occ in self.occupancy_samples]

    def mean_level_occupancy(self, level: int) -> float:
        """Time-averaged mean occupancy of one level's uplinks (ablations)."""
        values = [
            sample[level]
            for _t, sample in self.level_occupancy_samples
            if level in sample
        ]
        return float(np.mean(values)) if values else float("nan")

    @property
    def empirical_outage_rate(self) -> float:
        """Measured per-link outage frequency — Eq. (1) bounds this by epsilon."""
        if self.loaded_link_seconds == 0:
            return 0.0
        return self.outage_link_seconds / self.loaded_link_seconds


def allocator_for_model(model: str) -> Allocator:
    """The allocation algorithm each abstraction runs in the paper.

    The deterministic baselines (mean-VC, percentile-VC) use the Oktopus
    search; SVC uses the paper's optimizing algorithms.
    """
    if model in ("mean-vc", "percentile-vc"):
        return OktopusAllocator()
    if model == "svc":
        return default_allocator()
    raise ValueError(f"unknown abstraction model {model!r}")


def _start_job(
    manager: NetworkManager,
    plane: DataPlane,
    running: Dict[int, ActiveJob],
    spec: JobSpec,
    request,
    now: int,
) -> Optional[ActiveJob]:
    tenancy = manager.request(request)
    if tenancy is None:
        return None
    job = ActiveJob(spec=spec, tenancy=tenancy, start_time=now)
    running[spec.job_id] = job
    plane.start_job(job)
    return job


def _retire_completed(
    manager: NetworkManager,
    plane: DataPlane,
    running: Dict[int, ActiveJob],
    records: Dict[int, JobRecord],
    now: int,
) -> int:
    """Release every job whose completion time has arrived; returns count."""
    done_ids = [
        job_id
        for job_id, job in running.items()
        if job.network_done and job.compute_end <= now and (job.network_end or 0) <= now
    ]
    for job_id in done_ids:
        job = running.pop(job_id)
        plane.remove_job(job_id)
        manager.release(job.tenancy)
        completion = job.completion_time()
        assert completion is not None and completion <= now
        records[job_id] = JobRecord(
            job_id=job_id,
            n_vms=job.spec.n_vms,
            submit_time=job.spec.submit_time,
            start_time=job.start_time,
            completion_time=completion,
            compute_time=job.spec.compute_time,
        )
    return len(done_ids)


def run_batch(
    tree,
    specs: Sequence[JobSpec],
    model: str = "svc",
    epsilon: float = 0.05,
    allocator: Optional[Allocator] = None,
    rng: Optional[np.random.Generator] = None,
    max_time: int = 2_000_000,
    percentile: float = 95.0,
    rate_cap="nic",
) -> BatchResult:
    """Simulate the batched-jobs scenario (Section VI-B1).

    Jobs are queued FIFO at ``t = 0``; the head starts whenever it fits.
    A job that cannot fit even in an *empty* datacenter is recorded as
    unschedulable and skipped so the queue never deadlocks.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if allocator is None:
        allocator = allocator_for_model(model)
    manager = NetworkManager(tree, epsilon=epsilon, allocator=allocator)
    plane = DataPlane(tree, rng)
    cap = _resolve_rate_cap(tree, rate_cap)
    queue = deque(
        (spec, make_request(spec, model, percentile=percentile, rate_cap=cap))
        for spec in specs
    )
    running: Dict[int, ActiveJob] = {}
    records: Dict[int, JobRecord] = {}
    unschedulable: List[int] = []
    makespan = 0
    now = 0

    def try_schedule() -> None:
        while queue:
            spec, request = queue[0]
            job = _start_job(manager, plane, running, spec, request, now)
            if job is None:
                if not running:
                    # Would never fit: the datacenter is as empty as it gets.
                    unschedulable.append(spec.job_id)
                    queue.popleft()
                    continue
                break
            queue.popleft()

    try_schedule()
    while running or queue:
        if now > max_time:
            raise RuntimeError(f"batch simulation exceeded {max_time} steps")
        plane.step(now)
        now += 1
        if _retire_completed(manager, plane, running, records, now):
            makespan = now
            try_schedule()
    return BatchResult(
        records=[records[key] for key in sorted(records)],
        makespan=makespan,
        unschedulable=unschedulable,
    )


def run_online(
    tree,
    specs: Sequence[JobSpec],
    model: str = "svc",
    epsilon: float = 0.05,
    allocator: Optional[Allocator] = None,
    rng: Optional[np.random.Generator] = None,
    drain: bool = True,
    max_time: int = 2_000_000,
    percentile: float = 95.0,
    rate_cap="nic",
    track_outages: bool = False,
    track_levels: bool = False,
) -> OnlineResult:
    """Simulate the dynamically-arriving-jobs scenario (Section VI-B2).

    ``specs`` must carry Poisson ``submit_time`` stamps (see
    :func:`repro.simulation.workload.assign_poisson_arrivals`).  An arrival
    that cannot be allocated on the spot is rejected.  With ``drain=True``
    the simulation runs until all admitted jobs finish.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if allocator is None:
        allocator = allocator_for_model(model)
    manager = NetworkManager(tree, epsilon=epsilon, allocator=allocator)
    plane = DataPlane(tree, rng, track_outages=track_outages)
    if track_outages:
        # Publish the bound the empirical monitor is measured against, so
        # the metrics endpoint can compare rate vs epsilon live (Eq. 1).
        outage_monitor().set_epsilon(epsilon)
    cap = _resolve_rate_cap(tree, rate_cap)
    arrivals = deque(
        (spec, make_request(spec, model, percentile=percentile, rate_cap=cap))
        for spec in sorted(specs, key=lambda item: item.submit_time)
    )
    running: Dict[int, ActiveJob] = {}
    records: Dict[int, JobRecord] = {}
    concurrency_samples: List[Tuple[float, int]] = []
    occupancy_samples: List[Tuple[float, float]] = []
    level_samples: List[Tuple[float, Dict[int, float]]] = []
    num_rejected = 0
    num_arrivals = len(arrivals)
    now = 0

    while arrivals or (drain and running):
        if now > max_time:
            raise RuntimeError(f"online simulation exceeded {max_time} steps")
        _retire_completed(manager, plane, running, records, now)
        while arrivals and arrivals[0][0].submit_time <= now:
            spec, request = arrivals.popleft()
            concurrency_samples.append((spec.submit_time, len(running)))
            job = _start_job(manager, plane, running, spec, request, now)
            if job is None:
                num_rejected += 1
                records[spec.job_id] = JobRecord(
                    job_id=spec.job_id,
                    n_vms=spec.n_vms,
                    submit_time=spec.submit_time,
                    start_time=None,
                    completion_time=None,
                    compute_time=spec.compute_time,
                )
            occupancy_samples.append((spec.submit_time, manager.max_occupancy()))
            if track_levels:
                from repro.network.snapshot import utilization_by_level

                level_samples.append(
                    (
                        spec.submit_time,
                        {
                            row.level: row.mean_occupancy
                            for row in utilization_by_level(manager.state)
                        },
                    )
                )
        if not running and not arrivals:
            break
        if not running and arrivals:
            # Fast-forward the idle gap to the next arrival.
            now = max(now + 1, int(arrivals[0][0].submit_time))
            continue
        plane.step(now)
        now += 1
    # Jobs still running when the horizon closed (drain=False) are recorded
    # as started-but-incomplete.
    for job_id, job in running.items():
        records[job_id] = JobRecord(
            job_id=job_id,
            n_vms=job.spec.n_vms,
            submit_time=job.spec.submit_time,
            start_time=job.start_time,
            completion_time=None,
            compute_time=job.spec.compute_time,
        )
    outage_seconds, loaded_seconds = plane.outage_statistics()
    return OnlineResult(
        records=[records[key] for key in sorted(records)],
        num_arrivals=num_arrivals,
        num_rejected=num_rejected,
        concurrency_samples=concurrency_samples,
        occupancy_samples=occupancy_samples,
        outage_link_seconds=outage_seconds,
        loaded_link_seconds=loaded_seconds,
        level_occupancy_samples=level_samples,
    )
