"""Alternative demand-distribution families (the paper's stated extension).

"For simplicity, we assume normal distribution for the bandwidth demand in
this paper, but SVC can straightforwardly use other types of probability
distributions."  (Section VII.)

The straightforward route is exactly what the admission machinery invites:
every quantity it consumes — per-link split demands (Lemma 1), the CLT
aggregate, the effective bandwidth — depends only on the *first two moments*
of the per-VM demand.  So any family with finite mean and variance enters the
framework by moment matching: fit the family to the profile, convert to the
matched :class:`~repro.stochastic.normal.Normal`, and hand that to the SVC
request.  This module provides the families the measurement literature uses
for datacenter traffic (log-normal heavy tails, bounded uniform, raw
empirical) with exact moment conversion and faithful sampling for the data
plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.stochastic.normal import Normal


@dataclass(frozen=True)
class LogNormalDemand:
    """``exp(Normal(mu_log, sigma_log^2))`` — heavy-tailed bandwidth demand.

    The common model for flow-size/rate distributions in datacenter
    measurement studies; always nonnegative, so no clipping artifacts.
    """

    mu_log: float
    sigma_log: float

    def __post_init__(self) -> None:
        if self.sigma_log < 0.0:
            raise ValueError(f"sigma_log must be >= 0, got {self.sigma_log}")

    @property
    def mean(self) -> float:
        return math.exp(self.mu_log + 0.5 * self.sigma_log ** 2)

    @property
    def variance(self) -> float:
        factor = math.exp(self.sigma_log ** 2) - 1.0
        return factor * math.exp(2.0 * self.mu_log + self.sigma_log ** 2)

    def to_normal(self) -> Normal:
        """The moment-matched normal the SVC machinery consumes."""
        return Normal.from_variance(self.mean, self.variance)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.lognormal(self.mu_log, self.sigma_log, size=size)

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "LogNormalDemand":
        """The log-normal with the given (positive) mean and std."""
        if mean <= 0.0:
            raise ValueError(f"log-normal mean must be > 0, got {mean}")
        if std < 0.0:
            raise ValueError(f"std must be >= 0, got {std}")
        sigma_sq = math.log(1.0 + (std / mean) ** 2)
        mu_log = math.log(mean) - 0.5 * sigma_sq
        return cls(mu_log=mu_log, sigma_log=math.sqrt(sigma_sq))


@dataclass(frozen=True)
class UniformDemand:
    """``Uniform(low, high)`` — bounded, maximally uncertain inside a range."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        width = self.high - self.low
        return width * width / 12.0

    def to_normal(self) -> Normal:
        return Normal.from_variance(self.mean, self.variance)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.uniform(self.low, self.high, size=size)


@dataclass(frozen=True)
class EmpiricalDemand:
    """Resampling from measured rates — no parametric assumption at all."""

    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ValueError("need at least two samples")
        if any(sample < 0.0 for sample in self.samples):
            raise ValueError("rates cannot be negative")

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def variance(self) -> float:
        return float(np.var(self.samples, ddof=1))

    def to_normal(self) -> Normal:
        return Normal.from_variance(self.mean, self.variance)

    def sample(self, rng: np.random.Generator, size=None):
        return rng.choice(np.asarray(self.samples), size=size, replace=True)

    @classmethod
    def from_sequence(cls, values: Sequence[float]) -> "EmpiricalDemand":
        return cls(samples=tuple(float(value) for value in values))
