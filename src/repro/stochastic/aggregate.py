"""CLT aggregation, admission condition (Eq. 4), and occupancy (Eqs. 5-6).

On a link ``L`` with stochastic sharing bandwidth ``S_L = C_L - D_L``, the
``K`` resident stochastic demands ``B^1_L ... B^K_L`` (each summarized by its
mean ``mu_i`` and variance ``sigma_i^2``) are approximated via the central
limit theorem as a single normal ``Normal(sum mu_i, sum sigma_i^2)``.  The
probabilistic guarantee ``Pr(sum_i B^i_L > S_L) < epsilon`` (Eq. 1) then
becomes the deterministic test

    (S_L - sum mu_i) / sqrt(sum sigma_i^2) > Phi^{-1}(1 - epsilon)      (Eq. 4)

The *effective bandwidth* of demand ``i`` is
``E^L_i = mu_i + c * sigma_i^2 / sqrt(sum sigma^2)`` with
``c = Phi^{-1}(1 - epsilon)`` (Eq. 5), and the occupancy ratio is
``O_L = (D_L + sum_i E^L_i) / C_L`` (Eq. 6).  Summing the effective
bandwidths telescopes to ``sum mu_i + c * sqrt(sum sigma^2)``, so ``O_L < 1``
is *equivalent* to Eq. (4) — the identity this module exploits and the test
suite verifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.stochastic.normal import Normal, normal_cdf, normal_quantile

_VARIANCE_EPS = 1e-12


@lru_cache(maxsize=256)
def _risk_quantile_cached(epsilon: float) -> float:
    return normal_quantile(1.0 - epsilon)


def risk_quantile(epsilon: float) -> float:
    """``c = Phi^{-1}(1 - epsilon)`` — headroom multiplier for risk ``epsilon``.

    ``epsilon`` is the provider's SLA risk factor (Section III-B); the default
    in the paper's evaluation is 0.05, giving ``c ~= 1.645``.

    The quantile inversion is memoized: admission runs evaluate this once per
    ``admission_margin`` / effective-bandwidth call with a handful of distinct
    risk levels, so the cache turns a transcendental inversion into a dict hit.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"risk factor epsilon must be in (0, 1), got {epsilon}")
    return _risk_quantile_cached(epsilon)


@dataclass(frozen=True)
class DemandAggregate:
    """The CLT summary of a set of independent link demands.

    Immutable value object carrying ``sum mu_i`` and ``sum sigma_i^2``.  Link
    state keeps one of these per link and updates it incrementally as requests
    are admitted and released.
    """

    total_mean: float = 0.0
    total_variance: float = 0.0

    def __post_init__(self) -> None:
        if self.total_variance < -_VARIANCE_EPS:
            raise ValueError(f"aggregate variance must be >= 0, got {self.total_variance}")

    def add(self, demand: Normal) -> "DemandAggregate":
        """Aggregate with one more independent demand."""
        return DemandAggregate(
            self.total_mean + demand.mean,
            self.total_variance + demand.variance,
        )

    def remove(self, demand: Normal) -> "DemandAggregate":
        """Remove a previously added demand (release path).

        Floating-point round-off can leave a tiny negative variance when the
        last demand departs; it is clamped to zero.
        """
        variance = self.total_variance - demand.variance
        if variance < 0.0:
            variance = 0.0
        mean = self.total_mean - demand.mean
        if abs(mean) < _VARIANCE_EPS:
            mean = 0.0
        return DemandAggregate(mean, variance)

    @property
    def total_std(self) -> float:
        """``sqrt(sum sigma_i^2)`` of the aggregate."""
        return math.sqrt(max(self.total_variance, 0.0))

    def as_normal(self) -> Normal:
        """The CLT normal approximation of the aggregate demand."""
        return Normal.from_variance(self.total_mean, max(self.total_variance, 0.0))

    @property
    def is_empty(self) -> bool:
        return self.total_mean == 0.0 and self.total_variance == 0.0


def admission_margin(aggregate: DemandAggregate, sharing_bandwidth: float, epsilon: float) -> float:
    """Slack of the admission test: positive iff Eq. (4) holds strictly.

    Returns ``(S_L - sum mu) - c * sqrt(sum sigma^2)``, i.e. the bandwidth
    headroom beyond what the risk level requires.  Both the allocators and the
    occupancy computation are expressed through this quantity.
    """
    c = risk_quantile(epsilon)
    return sharing_bandwidth - aggregate.total_mean - c * aggregate.total_std


def is_admissible(aggregate: DemandAggregate, sharing_bandwidth: float, epsilon: float) -> bool:
    """Check Eq. (4): can the link carry this aggregate with outage < epsilon?

    For a fully deterministic aggregate (zero variance) the condition reduces
    to ``sum mu < S_L`` — the classical deterministic reservation test, as
    noted at the end of Section IV-B.
    """
    return admission_margin(aggregate, sharing_bandwidth, epsilon) > 0.0


def outage_probability(aggregate: DemandAggregate, sharing_bandwidth: float) -> float:
    """``Pr(sum_i B^i_L > S_L)`` under the CLT normal approximation (Eq. 1)."""
    if aggregate.total_variance <= 0.0:
        return 1.0 if aggregate.total_mean > sharing_bandwidth else 0.0
    z = (sharing_bandwidth - aggregate.total_mean) / aggregate.total_std
    return 1.0 - normal_cdf(z)


def effective_bandwidth_total(aggregate: DemandAggregate, epsilon: float) -> float:
    """``sum_i E^L_i = sum mu_i + c * sqrt(sum sigma_i^2)`` (telescoped Eq. 5).

    The effective bandwidth of an individual demand depends on its co-tenants
    (statistical multiplexing); their *sum*, however, has this closed form,
    which is all the occupancy ratio needs.
    """
    c = risk_quantile(epsilon)
    return aggregate.total_mean + c * aggregate.total_std


def effective_bandwidth_of(
    demand: Normal, aggregate: DemandAggregate, epsilon: float
) -> float:
    """``E^L_i = mu_i + c * sigma_i^2 / sqrt(sum sigma^2)`` for one demand (Eq. 5).

    ``aggregate`` must already *include* ``demand``.  When the aggregate is
    deterministic the stochastic surcharge vanishes and the effective
    bandwidth is just the mean.
    """
    c = risk_quantile(epsilon)
    total_std = aggregate.total_std
    if total_std == 0.0:
        return demand.mean
    return demand.mean + c * demand.variance / total_std


def occupancy_ratio(
    deterministic_reserved: float,
    aggregate: DemandAggregate,
    capacity: float,
    epsilon: float,
) -> float:
    """Bandwidth occupancy ratio ``O_L`` of a link (Eq. 6).

    ``O_L = (D_L + sum_i E^L_i) / C_L``.  ``O_L < 1`` is equivalent to the
    admission condition Eq. (4) on that link.
    """
    if capacity <= 0.0:
        raise ValueError(f"link capacity must be > 0, got {capacity}")
    return (deterministic_reserved + effective_bandwidth_total(aggregate, epsilon)) / capacity
