"""Probability substrate for the SVC reproduction.

This subpackage implements the stochastic machinery of the paper:

- :mod:`repro.stochastic.normal` — a small, explicit normal-distribution
  toolkit (pdf, cdf, quantile, arithmetic on independent normals).
- :mod:`repro.stochastic.minimum` — Lemma 1 of the paper: the exact mean and
  variance of the minimum of two independent normal random variables.
- :mod:`repro.stochastic.aggregate` — the central-limit-theorem aggregation of
  per-request link demands, the admission condition (Eq. 4), the effective
  bandwidth of a stochastic demand (Eq. 5), and the bandwidth occupancy ratio
  (Eq. 6).
"""

from repro.stochastic.normal import (
    Normal,
    ZERO,
    normal_cdf,
    normal_pdf,
    normal_quantile,
    sum_iid,
    sum_normals,
    truncated_moments,
    truncated_quantile,
)
from repro.stochastic.distributions import (
    EmpiricalDemand,
    LogNormalDemand,
    UniformDemand,
)
from repro.stochastic.minimum import min_of_normals
from repro.stochastic.aggregate import (
    DemandAggregate,
    admission_margin,
    effective_bandwidth_total,
    is_admissible,
    occupancy_ratio,
    outage_probability,
    risk_quantile,
)

__all__ = [
    "Normal",
    "ZERO",
    "normal_cdf",
    "normal_pdf",
    "normal_quantile",
    "sum_iid",
    "sum_normals",
    "truncated_moments",
    "truncated_quantile",
    "EmpiricalDemand",
    "LogNormalDemand",
    "UniformDemand",
    "min_of_normals",
    "DemandAggregate",
    "admission_margin",
    "effective_bandwidth_total",
    "is_admissible",
    "occupancy_ratio",
    "outage_probability",
    "risk_quantile",
]
