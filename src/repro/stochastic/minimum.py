"""Lemma 1: moments of the minimum of two independent normals.

A physical link ``L`` of the datacenter tree splits the ``N`` VMs of a virtual
cluster into two groups with aggregate demands ``X1`` and ``X2``.  The traffic
the request can push across ``L`` is bounded by what one side can send *and*
the other side can receive, so the request's bandwidth demand on ``L`` is
``min(X1, X2)`` (Section IV-A).  Lemma 1 of the paper (after Nadarajah & Kotz,
"Exact distribution of the max/min of two Gaussian random variables") gives
the exact mean and variance of that minimum:

    theta = sqrt(sigma1^2 + sigma2^2)
    alpha = (mu2 - mu1) / theta
    E[X]    = mu1 * Phi(alpha) + mu2 * Phi(-alpha) - theta * phi(alpha)
    Var[X]  = (sigma1^2 + mu1^2) * Phi(alpha) + (sigma2^2 + mu2^2) * Phi(-alpha)
              - (mu1 + mu2) * theta * phi(alpha) - E[X]^2

The result is *not* normal, but the paper (and we) only propagate its first
two moments into the CLT aggregation of Eq. (4).
"""

from __future__ import annotations

from repro.stochastic.normal import Normal, normal_cdf, normal_pdf


def min_of_normals(first: Normal, second: Normal) -> Normal:
    """Mean/std of ``min(X1, X2)`` for independent normals, as a :class:`Normal`.

    The returned :class:`Normal` carries the exact first two moments of the
    minimum; treating it as normally distributed downstream is precisely the
    paper's moment-matching approximation.

    Degenerate inputs are handled exactly:

    - both deterministic: the minimum is the smaller constant;
    - one deterministic at ``c``: the formulas remain valid with
      ``theta = sigma`` of the stochastic side.

    The fully degenerate *and equal* case (``theta == 0``) short-circuits to
    the common constant.
    """
    sigma1_sq = first.variance
    sigma2_sq = second.variance
    theta_sq = sigma1_sq + sigma2_sq
    if theta_sq == 0.0:
        return Normal.deterministic(min(first.mean, second.mean))

    theta = theta_sq ** 0.5
    alpha = (second.mean - first.mean) / theta
    cdf_alpha = normal_cdf(alpha)
    cdf_neg_alpha = 1.0 - cdf_alpha
    pdf_alpha = normal_pdf(alpha)

    mean = first.mean * cdf_alpha + second.mean * cdf_neg_alpha - theta * pdf_alpha
    second_moment = (
        (sigma1_sq + first.mean * first.mean) * cdf_alpha
        + (sigma2_sq + second.mean * second.mean) * cdf_neg_alpha
        - (first.mean + second.mean) * theta * pdf_alpha
    )
    # Var >= 0 mathematically; the subtraction can cancel catastrophically
    # when |mu| >> sigma, so clamp instead of trusting the round-off.
    variance = max(second_moment - mean * mean, 0.0)
    return Normal.from_variance(mean, variance)


def max_of_normals(first: Normal, second: Normal) -> Normal:
    """Moments of ``max(X1, X2)`` via ``max(a, b) = -min(-a, -b)``.

    Not used by the admission path (the paper only needs the min), but
    provided for completeness of the substrate and exercised by the test
    suite as a consistency check: ``E[min] + E[max] = mu1 + mu2``.
    """
    negated = min_of_normals(Normal(-first.mean, first.std), Normal(-second.mean, second.std))
    return Normal(-negated.mean, negated.std)
