"""Normal-distribution toolkit.

The SVC model (Section III-A of the paper) characterizes every VM's bandwidth
demand as a normal random variable ``B ~ Normal(mu, sigma^2)``.  This module
provides an explicit, immutable :class:`Normal` value type plus the handful of
standard-normal helpers (``phi``, ``Phi``, ``Phi^{-1}``) used throughout the
admission machinery.

All computations are closed-form; :mod:`scipy.special` supplies the erf-based
primitives so no sampling is involved anywhere in the control plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from scipy.special import erf, erfinv

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def normal_pdf(x: float) -> float:
    """Standard normal probability density ``phi(x)``."""
    return _INV_SQRT_2PI * math.exp(-0.5 * x * x)


def normal_cdf(x: float) -> float:
    """Standard normal cumulative distribution ``Phi(x)``."""
    return 0.5 * (1.0 + float(erf(x / _SQRT2)))


def normal_quantile(p: float) -> float:
    """Standard normal quantile ``Phi^{-1}(p)`` for ``p in (0, 1)``.

    This is the constant ``c = Phi^{-1}(1 - epsilon)`` of Eq. (5): the number of
    aggregate standard deviations of headroom the admission test demands.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile requires p in (0, 1), got {p}")
    return _SQRT2 * float(erfinv(2.0 * p - 1.0))


@dataclass(frozen=True)
class Normal:
    """An immutable normal random variable ``Normal(mean, std^2)``.

    Degenerate (deterministic) values are represented with ``std == 0``; this
    is how the deterministic virtual cluster model of Oktopus embeds into the
    SVC framework (Section III-A: "The SVC model is reduced to [the]
    traditional deterministic virtual cluster model ... if sigma_i = 0").
    """

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std < 0.0:
            raise ValueError(f"standard deviation must be >= 0, got {self.std}")
        if not math.isfinite(self.mean) or not math.isfinite(self.std):
            raise ValueError(f"normal parameters must be finite, got {self}")

    @property
    def variance(self) -> float:
        """``sigma^2``."""
        return self.std * self.std

    @property
    def is_deterministic(self) -> bool:
        """True when the variable is a point mass (``sigma == 0``)."""
        return self.std == 0.0

    @classmethod
    def from_variance(cls, mean: float, variance: float) -> "Normal":
        """Build from ``(mu, sigma^2)`` instead of ``(mu, sigma)``."""
        if variance < 0.0:
            # Clamp tiny negative round-off; reject genuinely negative input.
            if variance < -1e-9:
                raise ValueError(f"variance must be >= 0, got {variance}")
            variance = 0.0
        return cls(mean, math.sqrt(variance))

    @classmethod
    def deterministic(cls, value: float) -> "Normal":
        """A point mass at ``value`` (deterministic bandwidth demand)."""
        return cls(value, 0.0)

    def __add__(self, other: "Normal") -> "Normal":
        """Sum of *independent* normals: means and variances add."""
        if not isinstance(other, Normal):
            return NotImplemented
        return Normal.from_variance(self.mean + other.mean, self.variance + other.variance)

    def scale(self, factor: float) -> "Normal":
        """``factor * X`` for a scalar ``factor >= 0``."""
        if factor < 0.0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return Normal(self.mean * factor, self.std * factor)

    def cdf(self, x: float) -> float:
        """``Pr(X <= x)``."""
        if self.is_deterministic:
            return 1.0 if x >= self.mean else 0.0
        return normal_cdf((x - self.mean) / self.std)

    def sf(self, x: float) -> float:
        """Survival function ``Pr(X > x)``."""
        return 1.0 - self.cdf(x)

    def quantile(self, p: float) -> float:
        """``Phi^{-1}`` mapped through the location/scale of this variable."""
        if self.is_deterministic:
            if not 0.0 < p < 1.0:
                raise ValueError(f"quantile requires p in (0, 1), got {p}")
            return self.mean
        return self.mean + self.std * normal_quantile(p)

    def percentile(self, pct: float) -> float:
        """Percentile expressed on the 0..100 scale (e.g. ``percentile(95)``).

        The paper's *percentile-VC* baseline reserves the 95th percentile of
        the demand distribution; the heterogeneous heuristic sorts VMs by the
        same statistic (Section V-B).
        """
        return self.quantile(pct / 100.0)

    def sample(self, rng, size=None):
        """Draw samples with a :class:`numpy.random.Generator`.

        Only the data plane (the flow simulator) samples; the control plane
        works entirely with closed-form moments.
        """
        return rng.normal(self.mean, self.std, size=size)


ZERO = Normal(0.0, 0.0)
"""The demand of an empty VM group — used for ``m in {0, N}`` link splits."""


def truncated_moments(demand: Normal, lower: float, upper: float) -> Normal:
    """Moment-matched normal of ``X | lower <= X <= upper``.

    Used to derive tenant abstractions from a *NIC-limited* rate profile: a
    VM's observable bandwidth usage lives in ``[0, nic]``, so the distribution
    a tenant fits from its profile is the raw generation rate conditioned on
    that interval.  (See DESIGN.md, substitutions.)
    """
    if lower >= upper:
        raise ValueError(f"need lower < upper, got [{lower}, {upper}]")
    if demand.is_deterministic:
        return Normal.deterministic(min(max(demand.mean, lower), upper))
    alpha = (lower - demand.mean) / demand.std
    beta = (upper - demand.mean) / demand.std
    z = normal_cdf(beta) - normal_cdf(alpha)
    if z <= 1e-12:
        # Essentially no mass inside: collapse to the nearer bound.
        return Normal.deterministic(lower if alpha > 0 else upper)
    pdf_alpha, pdf_beta = normal_pdf(alpha), normal_pdf(beta)
    ratio = (pdf_alpha - pdf_beta) / z
    mean = demand.mean + demand.std * ratio
    variance = demand.variance * (
        1.0 + (alpha * pdf_alpha - beta * pdf_beta) / z - ratio * ratio
    )
    return Normal.from_variance(mean, max(variance, 0.0))


def truncated_quantile(demand: Normal, p: float, lower: float, upper: float) -> float:
    """Quantile of ``X | lower <= X <= upper`` (always within the bounds)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile requires p in (0, 1), got {p}")
    if lower >= upper:
        raise ValueError(f"need lower < upper, got [{lower}, {upper}]")
    if demand.is_deterministic:
        return min(max(demand.mean, lower), upper)
    cdf_lower = demand.cdf(lower)
    cdf_upper = demand.cdf(upper)
    z = cdf_upper - cdf_lower
    if z <= 1e-12:
        return lower if demand.mean < lower else upper
    return demand.quantile(cdf_lower + p * z)


def sum_iid(demand: Normal, count: int) -> Normal:
    """Aggregate of ``count`` i.i.d. copies of ``demand``.

    This is ``B(m) ~ Normal(m*mu, m*sigma^2)`` of Section IV-A: the aggregate
    bandwidth demand of ``m`` VMs of a homogeneous SVC request.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return ZERO
    return Normal.from_variance(demand.mean * count, demand.variance * count)


def sum_normals(demands: Iterable[Normal]) -> Normal:
    """Sum of independent (not necessarily identical) normals.

    Used for the heterogeneous SVC model (Section V-A), where a link splits
    the VM set into two groups whose aggregate demands are the sums of the
    member distributions.
    """
    mean = 0.0
    variance = 0.0
    for demand in demands:
        mean += demand.mean
        variance += demand.variance
    return Normal.from_variance(mean, variance)
