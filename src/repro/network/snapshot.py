"""Datacenter utilization snapshots.

Aggregates the per-link occupancy ratios of a :class:`NetworkState` by tree
level — the view that makes locality effects visible: localized placements
keep aggregation/core (level 2/3) occupancy low, spreading placements push
it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.network.link_state import NetworkState


@dataclass(frozen=True)
class LevelUtilization:
    """Occupancy statistics of all uplinks of nodes at one tree level."""

    level: int
    num_links: int
    mean_occupancy: float
    max_occupancy: float
    mean_deterministic_share: float
    #: Stochastic headroom ``S_L - sum mu_i`` (sharing bandwidth left after
    #: the resident SVC mean demands) in Mbps — the guarantee-health margin
    #: the observability gauges track per level.
    mean_headroom_mbps: float = 0.0
    min_headroom_mbps: float = 0.0

    @property
    def label(self) -> str:
        names = {0: "machine", 1: "ToR", 2: "aggregation"}
        return names.get(self.level, f"level-{self.level}")


def utilization_by_level(state: NetworkState) -> List[LevelUtilization]:
    """Per-level occupancy summary, machines (level 0 uplinks) first.

    A link is attributed to the level of its *lower* endpoint: machine
    uplinks are level 0, ToR uplinks level 1, aggregation uplinks level 2.
    """
    tree = state.tree
    buckets: Dict[int, List[float]] = {}
    det_share: Dict[int, List[float]] = {}
    headroom: Dict[int, List[float]] = {}
    for link_id, link_state in state.links.items():
        level = tree.node(link_id).level
        occupancy = link_state.occupancy(state.risk_c)
        buckets.setdefault(level, []).append(occupancy)
        det_share.setdefault(level, []).append(
            link_state.deterministic_total / link_state.capacity
        )
        headroom.setdefault(level, []).append(
            link_state.sharing_bandwidth - link_state.mean_total
        )
    summary = []
    for level in sorted(buckets):
        values = buckets[level]
        margins = headroom[level]
        summary.append(
            LevelUtilization(
                level=level,
                num_links=len(values),
                mean_occupancy=sum(values) / len(values),
                max_occupancy=max(values),
                mean_deterministic_share=sum(det_share[level]) / len(det_share[level]),
                mean_headroom_mbps=sum(margins) / len(margins),
                min_headroom_mbps=min(margins),
            )
        )
    return summary


def format_utilization(state: NetworkState) -> str:
    """Human-readable multi-line utilization report."""
    lines = ["level         links  mean-occ  max-occ  det-share"]
    for row in utilization_by_level(state):
        lines.append(
            f"{row.label:12s}  {row.num_links:5d}  {row.mean_occupancy:8.3f}  "
            f"{row.max_occupancy:7.3f}  {row.mean_deterministic_share:9.3f}"
        )
    return "\n".join(lines)
