"""Mutable per-link and datacenter-wide reservation state.

:class:`LinkState` is the paper's Fig. 2 in code: a link's capacity ``C_L``
is split into a deterministically reserved portion ``D_L`` and the stochastic
sharing bandwidth ``S_L = C_L - D_L`` shared by the resident SVC demands
``B^1_L ... B^K_L`` (each tracked by its mean and variance).

:class:`NetworkState` aggregates the link states with per-machine free-slot
accounting, and owns the commit/release lifecycle of allocations.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

from repro.stochastic.aggregate import DemandAggregate, risk_quantile
from repro.stochastic.normal import Normal
from repro.topology.nodes import Link
from repro.topology.tree import Tree

_NEG_CLAMP = 1e-9


class LinkState:
    """Reservation bookkeeping for one physical link.

    Tracks the deterministic reservation total ``D_L`` and the first two
    moments of every resident stochastic demand, keyed by request id, with
    the aggregate sums maintained incrementally.
    """

    __slots__ = (
        "link",
        "deterministic_total",
        "mean_total",
        "var_total",
        "_det_by_request",
        "_stoch_by_request",
    )

    def __init__(self, link: Link) -> None:
        self.link = link
        self.deterministic_total = 0.0
        self.mean_total = 0.0
        self.var_total = 0.0
        self._det_by_request: Dict[int, float] = {}
        self._stoch_by_request: Dict[int, Normal] = {}

    @property
    def capacity(self) -> float:
        """``C_L`` in Mbps."""
        return self.link.capacity

    @property
    def sharing_bandwidth(self) -> float:
        """``S_L = C_L - D_L`` — bandwidth statistically shared by SVC demands."""
        return self.link.capacity - self.deterministic_total

    @property
    def num_stochastic_demands(self) -> int:
        """``K`` — how many SVC requests currently load this link."""
        return len(self._stoch_by_request)

    def aggregate(self) -> DemandAggregate:
        """CLT summary of the resident stochastic demands."""
        return DemandAggregate(self.mean_total, max(self.var_total, 0.0))

    def stochastic_demand_of(self, request_id: int) -> Optional[Normal]:
        """The recorded demand of one request on this link, if any."""
        return self._stoch_by_request.get(request_id)

    def deterministic_reservation_of(self, request_id: int) -> float:
        """The recorded deterministic reservation of one request (0 if none)."""
        return self._det_by_request.get(request_id, 0.0)

    def deterministic_entries(self) -> Iterator[Tuple[int, float]]:
        """``(request_id, reserved_mbps)`` for every resident reservation."""
        return iter(self._det_by_request.items())

    def stochastic_entries(self) -> Iterator[Tuple[int, Normal]]:
        """``(request_id, demand)`` for every resident stochastic demand."""
        return iter(self._stoch_by_request.items())

    # ------------------------------------------------------------------
    # Occupancy (Eq. 6) — with optional hypothetical extra demand
    # ------------------------------------------------------------------

    def occupancy(self, risk_c: float) -> float:
        """Current ``O_L`` given ``c = Phi^{-1}(1 - epsilon)``."""
        return self.occupancy_with(risk_c)

    def occupancy_with(
        self,
        risk_c: float,
        extra_mean: float = 0.0,
        extra_var: float = 0.0,
        extra_deterministic: float = 0.0,
    ) -> float:
        """``O_L`` if a hypothetical demand were added (Eq. 6).

        The allocators probe candidate placements through this method;
        ``O_L < 1`` is exactly the validity condition Eq. (4).
        """
        var = self.var_total + extra_var
        if var < 0.0:
            var = 0.0
        effective = self.mean_total + extra_mean + risk_c * math.sqrt(var)
        return (
            self.deterministic_total + extra_deterministic + effective
        ) / self.link.capacity

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_stochastic(self, request_id: int, demand: Normal) -> None:
        """Record an admitted SVC demand on this link."""
        if request_id in self._stoch_by_request or request_id in self._det_by_request:
            raise ValueError(f"request {request_id} already present on link {self.link.link_id}")
        self._stoch_by_request[request_id] = demand
        self.mean_total += demand.mean
        self.var_total += demand.variance

    def add_deterministic(self, request_id: int, amount: float) -> None:
        """Record an admitted deterministic reservation on this link."""
        if amount < 0.0:
            raise ValueError(f"reservation must be >= 0, got {amount}")
        if request_id in self._stoch_by_request or request_id in self._det_by_request:
            raise ValueError(f"request {request_id} already present on link {self.link.link_id}")
        self._det_by_request[request_id] = amount
        self.deterministic_total += amount

    def remove_request(self, request_id: int) -> None:
        """Remove a departing request's footprint (idempotent no-op if absent).

        When the last stochastic tenant departs, both aggregate moments are
        zeroed *exactly* — incremental subtraction leaves a tiny float residue
        (most visibly in ``var_total``) that would make an empty link report
        nonzero effective bandwidth forever.  The deterministic total gets the
        same treatment when the last reservation leaves.
        """
        demand = self._stoch_by_request.pop(request_id, None)
        if demand is not None:
            if self._stoch_by_request:
                self.mean_total -= demand.mean
                self.var_total -= demand.variance
                if abs(self.mean_total) < _NEG_CLAMP:
                    self.mean_total = 0.0
                if self.var_total < 0.0:
                    self.var_total = 0.0
            else:
                self.mean_total = 0.0
                self.var_total = 0.0
        amount = self._det_by_request.pop(request_id, None)
        if amount is not None:
            if self._det_by_request:
                self.deterministic_total -= amount
                if abs(self.deterministic_total) < _NEG_CLAMP:
                    self.deterministic_total = 0.0
            else:
                self.deterministic_total = 0.0

    @property
    def is_idle(self) -> bool:
        """True when no request loads this link."""
        return not self._det_by_request and not self._stoch_by_request


class NetworkState:
    """The network manager's live view of the datacenter.

    Owns one :class:`LinkState` per physical link, per-machine free-slot
    counters, and the provider-wide SLA risk factor ``epsilon`` from which the
    headroom multiplier ``c = Phi^{-1}(1 - epsilon)`` is derived once.
    """

    def __init__(self, tree: Tree, epsilon: float = 0.05) -> None:
        self.tree = tree
        self.epsilon = epsilon
        self.risk_c = risk_quantile(epsilon)
        self.links: Dict[int, LinkState] = {
            link.link_id: LinkState(link) for link in tree.links
        }
        self._free_slots: Dict[int, int] = {
            machine_id: tree.node(machine_id).slot_capacity
            for machine_id in tree.machine_ids
        }
        self._total_free = sum(self._free_slots.values())
        # Per-internal-node free-slot totals, maintained incrementally by
        # _occupy/_vacate along the machine's ancestor chain.  The allocators'
        # fast path uses them to cap DP split sizes at what a subtree can
        # actually hold and to skip subtrees that cannot host a request.
        self._free_under: Dict[int, int] = {
            node.node_id: tree.slots_under(node.node_id)
            for node in tree.nodes
            if not node.is_machine
        }
        self._ancestors: Dict[int, Tuple[int, ...]] = {}
        for machine_id in tree.machine_ids:
            chain = []
            current = tree.node(machine_id).parent
            while current is not None:
                chain.append(current)
                current = tree.node(current).parent
            self._ancestors[machine_id] = tuple(chain)
        #: Mutation counter, bumped by every commit/release.  Batch contexts
        #: compare it against the version they last synced at: a mismatch
        #: means the state moved under them (e.g. a release between allocate
        #: calls) and their per-node freshness memos must be dropped.
        self.version = 0

    # ------------------------------------------------------------------
    # Slot accounting
    # ------------------------------------------------------------------

    def free_slots(self, machine_id: int) -> int:
        """Empty VM slots on one machine."""
        return self._free_slots[machine_id]

    def ancestors(self, machine_id: int) -> Tuple[int, ...]:
        """The machine's ancestor chain (parent first, root last)."""
        return self._ancestors[machine_id]

    def free_slots_under(self, node_id: int) -> int:
        """Empty VM slots in the whole subtree rooted at ``node_id``.

        O(1): machine entries come from the per-machine counters, internal
        entries from the incrementally maintained subtree totals.
        """
        free = self._free_slots.get(node_id)
        if free is not None:
            return free
        return self._free_under[node_id]

    @property
    def total_free_slots(self) -> int:
        """Empty VM slots datacenter-wide."""
        return self._total_free

    @property
    def total_slots(self) -> int:
        return self.tree.total_slots

    @property
    def used_slots(self) -> int:
        return self.tree.total_slots - self._total_free

    def _occupy(self, machine_id: int, count: int) -> None:
        available = self._free_slots[machine_id]
        if count > available:
            raise ValueError(
                f"machine {machine_id} has {available} free slots, cannot take {count}"
            )
        self._free_slots[machine_id] = available - count
        self._total_free -= count
        for ancestor in self._ancestors[machine_id]:
            self._free_under[ancestor] -= count

    def _vacate(self, machine_id: int, count: int) -> None:
        capacity = self.tree.node(machine_id).slot_capacity
        freed = self._free_slots[machine_id] + count
        if freed > capacity:
            raise ValueError(
                f"machine {machine_id} would exceed its {capacity} slots on release"
            )
        self._free_slots[machine_id] = freed
        self._total_free += count
        for ancestor in self._ancestors[machine_id]:
            self._free_under[ancestor] += count

    # ------------------------------------------------------------------
    # Allocation lifecycle
    # ------------------------------------------------------------------

    def commit(self, allocation) -> None:
        """Apply an :class:`~repro.allocation.base.Allocation` to the network.

        Slots are occupied and per-link demands recorded: deterministic
        requests reserve their mean into ``D_L`` (to be enforced by rate
        limiting); stochastic requests join the statistical share.
        """
        for machine_id, count in allocation.machine_counts.items():
            self._occupy(machine_id, count)
        for link_id, demand in allocation.link_demands.items():
            state = self.links[link_id]
            if allocation.deterministic:
                state.add_deterministic(allocation.request_id, demand.mean)
            else:
                state.add_stochastic(allocation.request_id, demand)
        self.version += 1

    def release(self, allocation) -> None:
        """Undo :meth:`commit` when the tenant departs.

        Validate-then-mutate: every slot return is checked against machine
        capacity before anything is touched, so a release either applies in
        full or raises without side effects (``remove_request`` is an
        idempotent no-op for absent requests and cannot fail afterwards).
        """
        for machine_id, count in allocation.machine_counts.items():
            capacity = self.tree.node(machine_id).slot_capacity
            if self._free_slots[machine_id] + count > capacity:
                raise ValueError(
                    f"machine {machine_id} would exceed its {capacity} slots on release"
                )
        for machine_id, count in allocation.machine_counts.items():
            self._vacate(machine_id, count)
        for link_id in allocation.link_demands:
            self.links[link_id].remove_request(allocation.request_id)
        self.version += 1

    # ------------------------------------------------------------------
    # Datacenter-wide views
    # ------------------------------------------------------------------

    def occupancy_of(self, link_id: int) -> float:
        """``O_L`` of one link at the configured risk level."""
        return self.links[link_id].occupancy(self.risk_c)

    def occupancies(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(link_id, O_L)`` for every link."""
        for link_id, state in self.links.items():
            yield link_id, state.occupancy(self.risk_c)

    def max_occupancy(self) -> float:
        """``max_L O_L`` — the statistic sampled for Fig. 9 (0 for an idle net)."""
        worst = 0.0
        for state in self.links.values():
            value = state.occupancy(self.risk_c)
            if value > worst:
                worst = value
        return worst

    def is_pristine(self) -> bool:
        """True when no request holds any slot or bandwidth (test invariant)."""
        if self._total_free != self.tree.total_slots:
            return False
        return all(state.is_idle for state in self.links.values())
