"""Per-link bandwidth bookkeeping for the network manager.

The network manager "maintains the up-to-date status of the datacenter
network" (Section III-C): per-link deterministic reservations ``D_L``, the
stochastic sharing bandwidth ``S_L = C_L - D_L``, the distribution of every
resident SVC demand per link, and the free VM slots per machine.  This
subpackage is that state.
"""

from repro.network.link_state import LinkState, NetworkState
from repro.network.snapshot import (
    LevelUtilization,
    format_utilization,
    utilization_by_level,
)

__all__ = [
    "LinkState",
    "NetworkState",
    "LevelUtilization",
    "format_utilization",
    "utilization_by_level",
]
