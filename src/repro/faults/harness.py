"""The chaos harness: randomized fault schedules vs the recovery oracle.

One schedule (:func:`run_chaos_schedule`) drives a single-worker journaled
:class:`~repro.service.concurrency.AdmissionService` through a random
admit/release workload while the seeded fault plan fires — transient
journal errors, torn writes, corrupt snapshots, forced queue saturation,
and (in ~70% of schedules) a crash planted on the admit or release path.
The harness keeps a client-side **ledger**: which admissions and releases
were *acknowledged* (the ticket resolved / the call returned) and which
submission was in flight when the service died.

After the run it recovers from disk and verifies the recovery contract
field-for-field against :func:`~repro.service.recovery.oracle_replay`, the
single-threaded from-scratch replay of the whole journal:

1. recovered network state == oracle state (exact dict equality), and the
   active tenancy sets match;
2. **no acknowledged admission is lost**: every admit the client saw acked
   (net of acked releases) holds its bandwidth after recovery;
3. **no acknowledged release survives**: every release the client saw
   acked stays released;
4. every link occupancy ``O_L`` of the recovered state is ``< 1`` —
   recovery never resurrects load the admission test would refuse;
5. **no double-admit on retry**: resubmitting the in-flight (unacked)
   request with its original idempotency key — twice — converges on one
   decision.  If the crash fell *after* the journal append (the ack was
   lost, not the admission), the retry returns the journaled request id
   and allocates nothing new;
6. after the retries, the journal still oracle-replays to exactly the
   live state.

Failures are collected, not raised, so ``svc-repro chaos`` can report the
seed (every schedule is a pure function of it) for replay.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.experiments.config import SCALES
from repro.faults.failpoints import FAILPOINTS, InjectedCrash
from repro.faults.schedule import ChaosPlan
from repro.manager.network_manager import NetworkManager
from repro.service.codec import network_state_to_dict
from repro.service.concurrency import OUTCOME_ADMITTED, AdmissionService
from repro.service.degrade import DegradationLadder
from repro.service.errors import DegradedError, ServiceError
from repro.service.journal import DurabilityStore
from repro.service.recovery import oracle_replay, recover_manager
from repro.stochastic import Normal
from repro.topology import build_datacenter

#: How long the harness waits for one decision before declaring the
#: service dead (the planted crashes resolve in milliseconds).
_DECISION_TIMEOUT_S = 5.0


def random_request(rng: random.Random):
    """One random tenant request (mirrors the recovery-test workload)."""
    kind = rng.randrange(3)
    n_vms = rng.randint(2, 9)
    if kind == 0:
        return DeterministicVC(n_vms=n_vms, bandwidth=rng.uniform(40, 200))
    if kind == 1:
        return HomogeneousSVC(
            n_vms=n_vms, mean=rng.uniform(40, 200), std=rng.uniform(5, 80)
        )
    return HeterogeneousSVC(
        n_vms=n_vms,
        demands=tuple(
            Normal(rng.uniform(40, 200), rng.uniform(5, 60)) for _ in range(n_vms)
        ),
    )


@dataclass
class ChaosResult:
    """Outcome of one schedule: the ledger plus every violated invariant."""

    seed: int
    plan: ChaosPlan
    crashed: bool = False
    operations_run: int = 0
    acked_admits: int = 0
    acked_releases: int = 0
    shed: int = 0
    degraded_hits: int = 0
    unacked_keys: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def describe(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "crashed": self.crashed,
            "operations_run": self.operations_run,
            "acked_admits": self.acked_admits,
            "acked_releases": self.acked_releases,
            "shed": self.shed,
            "degraded_hits": self.degraded_hits,
            "unacked_keys": self.unacked_keys,
            "failures": list(self.failures),
            "plan": self.plan.describe(),
        }


def run_chaos_schedule(
    seed: int,
    directory: Path,
    scale: str = "tiny",
    operations: int = 40,
    snapshot_every: int = 5,
) -> ChaosResult:
    """Run one seeded fault schedule end to end; see the module docstring."""
    plan = ChaosPlan.generate(seed, operations=operations)
    result = ChaosResult(seed=seed, plan=plan)
    rng = random.Random(seed ^ 0x5EED)
    tree = build_datacenter(SCALES[scale].spec)
    directory = Path(directory)

    # ---- phase 1: faulty workload -----------------------------------
    plan.arm(FAILPOINTS)
    store = DurabilityStore(directory, fsync=plan.fsync, snapshot_every=snapshot_every)
    service = AdmissionService(
        NetworkManager(tree),
        store=store,
        workers=1,
        degradation=DegradationLadder(probe_interval=0.02),
    ).start()

    acked_active: Dict[str, int] = {}  # idempotency key -> request_id
    acked_released: List[int] = []
    unacked: Dict[str, Any] = {}  # in-flight submits when the service died
    try:
        for index in range(operations):
            if service.crashed or not service.running:
                result.crashed = service.crashed
                break
            result.operations_run = index + 1
            if acked_active and rng.random() < 0.3:
                key, request_id = rng.choice(sorted(acked_active.items()))
                try:
                    if service.release(request_id):
                        del acked_active[key]
                        acked_released.append(request_id)
                        result.acked_releases += 1
                except InjectedCrash:
                    # The crash fell inside the release: it may or may not
                    # have been journaled, so this tenancy's fate is
                    # indeterminate from the client's side — drop it from
                    # the acked ledger (neither invariant may assert it).
                    del acked_active[key]
                    result.crashed = True
                    break
                except DegradedError:
                    # Release shed or rolled back: the tenancy is still
                    # active and acknowledged as such.
                    result.degraded_hits += 1
                    time.sleep(0.03)
                except ServiceError:
                    result.shed += 1
            else:
                key = f"chaos-{seed}-{index}"
                request = random_request(rng)
                try:
                    ticket = service.submit(
                        request,
                        wait=True,
                        wait_timeout=_DECISION_TIMEOUT_S,
                        idempotency_key=key,
                    )
                except DegradedError:
                    result.degraded_hits += 1
                    time.sleep(0.03)
                    continue
                except ServiceError:
                    result.shed += 1
                    continue
                if not ticket.done:
                    unacked[key] = request
                    if service.crashed:
                        result.crashed = True
                    else:
                        result.fail(
                            f"submit of {key} hung >{_DECISION_TIMEOUT_S}s "
                            "without a crash"
                        )
                    break
                if ticket.outcome == OUTCOME_ADMITTED:
                    acked_active[key] = ticket.request_id
                    result.acked_admits += 1
    finally:
        service.kill()
        store.close()
        FAILPOINTS.clear()
    result.unacked_keys = len(unacked)

    # ---- phase 2: recover and referee against the oracle ------------
    store = DurabilityStore(directory, snapshot_every=snapshot_every)
    try:
        recovered, report = recover_manager(store, tree)
    except Exception as exc:
        result.fail(f"recovery raised {type(exc).__name__}: {exc}")
        store.close()
        return result
    try:
        oracle_state, oracle_active = oracle_replay(store.wal_path, tree)
    except Exception as exc:
        result.fail(f"oracle replay raised {type(exc).__name__}: {exc}")
        store.close()
        return result

    recovered_ids = sorted(t.request_id for t in recovered.tenancies())
    if network_state_to_dict(recovered.state) != network_state_to_dict(oracle_state):
        result.fail("recovered network state differs from oracle replay")
    if recovered_ids != sorted(oracle_active):
        result.fail(
            f"active tenancies diverge: recovered={recovered_ids} "
            f"oracle={sorted(oracle_active)}"
        )
    active_set = set(recovered_ids)
    for key, request_id in acked_active.items():
        if request_id not in active_set:
            result.fail(f"acked admission lost: {key} (request {request_id})")
    for request_id in acked_released:
        if request_id in active_set:
            result.fail(f"acked release resurrected: request {request_id}")
    max_occupancy = recovered.max_occupancy()
    if not max_occupancy < 1.0:
        result.fail(f"recovered occupancy violates O_L < 1: {max_occupancy}")

    # ---- phase 3: retry the in-flight request — no double-admit -----
    service = AdmissionService(
        recovered,
        store=store,
        workers=1,
        degradation=DegradationLadder(probe_interval=0.02),
        idempotency_index=report.idempotency_index,
    ).start()
    try:
        for key, request in unacked.items():
            journaled = report.idempotency_index.get(key)
            active_before = recovered.active_tenancies
            first = service.submit(
                request, wait=True, wait_timeout=_DECISION_TIMEOUT_S,
                idempotency_key=key,
            )
            second = service.submit(
                request, wait=True, wait_timeout=_DECISION_TIMEOUT_S,
                idempotency_key=key,
            )
            if not (first.done and second.done):
                result.fail(f"retry of {key} did not decide")
                continue
            if (first.outcome, first.request_id) != (second.outcome, second.request_id):
                result.fail(
                    f"retries of {key} diverged: "
                    f"{first.outcome}/{first.request_id} vs "
                    f"{second.outcome}/{second.request_id}"
                )
            if journaled is not None:
                # Journaled-but-unacked: only the ack was lost.  The retry
                # must return the journaled decision and allocate nothing.
                if first.outcome != journaled["outcome"]:
                    result.fail(
                        f"retry of journaled {key} returned {first.outcome}, "
                        f"journal says {journaled['outcome']}"
                    )
                if (
                    journaled["outcome"] == OUTCOME_ADMITTED
                    and first.request_id != journaled["request_id"]
                ):
                    result.fail(
                        f"retry of {key} got request {first.request_id}, "
                        f"journal holds {journaled['request_id']}"
                    )
                if recovered.active_tenancies != active_before:
                    result.fail(f"retry of journaled {key} double-admitted")
            elif first.outcome == OUTCOME_ADMITTED and (
                recovered.active_tenancies != active_before + 1
            ):
                result.fail(f"fresh retry of {key} admitted more than once")
    finally:
        service.stop()
        store.close()

    # ---- phase 4: the extended journal must still oracle-replay -----
    try:
        final_state, final_active = oracle_replay(
            (directory / "wal.jsonl"), tree
        )
    except Exception as exc:
        result.fail(f"post-retry oracle replay raised {type(exc).__name__}: {exc}")
        return result
    if network_state_to_dict(final_state) != network_state_to_dict(recovered.state):
        result.fail("post-retry state differs from oracle replay")
    if sorted(final_active) != sorted(t.request_id for t in recovered.tenancies()):
        result.fail("post-retry active set differs from oracle replay")
    return result


def run_chaos_suite(
    schedules: int,
    base_seed: int,
    workdir: Path,
    scale: str = "tiny",
    operations: int = 40,
    stop_on_failure: bool = False,
    progress=None,
) -> List[ChaosResult]:
    """Run ``schedules`` consecutive seeds; returns every result."""
    results: List[ChaosResult] = []
    workdir = Path(workdir)
    for index in range(schedules):
        seed = base_seed + index
        result = run_chaos_schedule(
            seed, workdir / f"schedule-{seed}", scale=scale, operations=operations
        )
        results.append(result)
        if progress is not None:
            progress(result)
        if stop_on_failure and not result.ok:
            break
    return results
