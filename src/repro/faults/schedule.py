"""Randomized-but-reproducible fault schedules for the chaos harness.

A :class:`ChaosPlan` is everything one chaos run arms: possibly one crash
site (fires deterministically on its N-th call, like a power cut at a
chosen instruction), plus transient faults — probabilistic journal I/O
errors, torn journal writes, corrupt snapshots, forced queue saturation,
fsync failures.  Plans are pure functions of a seed, so any failing run is
replayable from its seed alone (``svc-repro chaos --seed N --schedules 1``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.failpoints import (
    FP_JOURNAL_FSYNC,
    FP_JOURNAL_WRITE,
    FP_QUEUE_ACCEPT,
    FP_RELEASE_AFTER_JOURNAL,
    FP_RELEASE_BEFORE_JOURNAL,
    FP_SNAPSHOT_WRITE,
    FP_WORKER_AFTER_JOURNAL,
    FP_WORKER_BEFORE_JOURNAL,
    MODE_CORRUPT,
    MODE_CRASH,
    MODE_ERROR,
    MODE_SHED,
    FailpointRegistry,
)

#: Sites where an injected crash models dying mid-operation.  They bracket
#: the journal append on both the admit and the release path, so schedules
#: cover "decided but never journaled" and "journaled but never acked".
CRASH_SITES = (
    FP_WORKER_BEFORE_JOURNAL,
    FP_WORKER_AFTER_JOURNAL,
    FP_RELEASE_BEFORE_JOURNAL,
    FP_RELEASE_AFTER_JOURNAL,
)


@dataclass
class ChaosPlan:
    """One run's armings, derived deterministically from ``seed``."""

    seed: int
    operations: int = 40
    #: ``arm()`` keyword sets, one per armed failpoint.
    armings: List[Dict[str, Any]] = field(default_factory=list)
    crash_site: Optional[str] = None
    #: Whether the run's durability store fsyncs each append.
    fsync: bool = False

    @classmethod
    def generate(cls, seed: int, operations: int = 40) -> "ChaosPlan":
        rng = random.Random(seed)
        plan = cls(seed=seed, operations=operations)
        # ~70% of schedules die mid-run at a deterministic call count;
        # the rest only suffer transient faults and must stay consistent
        # without ever crashing.
        if rng.random() < 0.7:
            plan.crash_site = rng.choice(CRASH_SITES)
            plan.armings.append(
                {
                    "name": plan.crash_site,
                    "mode": MODE_CRASH,
                    "every": rng.randint(2, max(3, operations // 3)),
                    "max_hits": 1,
                }
            )
        # Transient journal failures: I/O errors or torn (half-written)
        # lines.  Low probability so the service usually climbs back to
        # full operation between hits.
        if rng.random() < 0.6:
            plan.armings.append(
                {
                    "name": FP_JOURNAL_WRITE,
                    "mode": rng.choice((MODE_ERROR, MODE_CORRUPT)),
                    "probability": rng.uniform(0.02, 0.12),
                }
            )
        if rng.random() < 0.3:
            plan.fsync = True
            plan.armings.append(
                {
                    "name": FP_JOURNAL_FSYNC,
                    "mode": MODE_ERROR,
                    "probability": rng.uniform(0.02, 0.1),
                }
            )
        if rng.random() < 0.35:
            plan.armings.append(
                {
                    "name": FP_SNAPSHOT_WRITE,
                    "mode": rng.choice((MODE_ERROR, MODE_CORRUPT)),
                    "probability": rng.uniform(0.1, 0.5),
                }
            )
        if rng.random() < 0.3:
            plan.armings.append(
                {
                    "name": FP_QUEUE_ACCEPT,
                    "mode": MODE_SHED,
                    "probability": rng.uniform(0.02, 0.1),
                }
            )
        return plan

    def arm(self, registry: FailpointRegistry) -> None:
        """Arm this plan on a registry (clearing whatever was armed)."""
        registry.clear()
        registry.seed(self.seed)
        for arming in self.armings:
            options = dict(arming)
            registry.arm(str(options.pop("name")), mode=str(options.pop("mode")), **options)

    def describe(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "operations": self.operations,
            "fsync": self.fsync,
            "crash_site": self.crash_site,
            "armings": [dict(arming) for arming in self.armings],
        }
