"""Deterministic fault injection for the admission service (``repro.faults``).

Failpoints are named hooks compiled into the durability and worker paths
(``journal.write``, ``worker.crash_after_journal``, ...).  Arming one from a
test, the chaos harness, or ``svc-repro serve --failpoints`` makes that site
fail — raise, crash, stall, corrupt, or shed — under a seeded RNG, so every
fault schedule is replayable.  See docs/operations.md for the operator view
and DESIGN.md §7 for the fault model.
"""

from repro.faults.failpoints import (
    FAILPOINTS,
    FP_JOURNAL_FSYNC,
    FP_JOURNAL_WRITE,
    FP_QUEUE_ACCEPT,
    FP_RELEASE_AFTER_JOURNAL,
    FP_RELEASE_BEFORE_JOURNAL,
    FP_SERVER_RESPONSE,
    FP_SNAPSHOT_WRITE,
    FP_WORKER_AFTER_JOURNAL,
    FP_WORKER_BEFORE_JOURNAL,
    KNOWN_FAILPOINTS,
    MODE_CORRUPT,
    MODE_CRASH,
    MODE_DELAY,
    MODE_ERROR,
    MODE_SHED,
    MODES,
    Failpoint,
    FailpointError,
    FailpointRegistry,
    InjectedCrash,
    arm_from_spec,
    parse_failpoint_spec,
)

__all__ = [
    "FAILPOINTS",
    "FP_JOURNAL_FSYNC",
    "FP_JOURNAL_WRITE",
    "FP_QUEUE_ACCEPT",
    "FP_RELEASE_AFTER_JOURNAL",
    "FP_RELEASE_BEFORE_JOURNAL",
    "FP_SERVER_RESPONSE",
    "FP_SNAPSHOT_WRITE",
    "FP_WORKER_AFTER_JOURNAL",
    "FP_WORKER_BEFORE_JOURNAL",
    "KNOWN_FAILPOINTS",
    "MODE_CORRUPT",
    "MODE_CRASH",
    "MODE_DELAY",
    "MODE_ERROR",
    "MODE_SHED",
    "MODES",
    "Failpoint",
    "FailpointError",
    "FailpointRegistry",
    "InjectedCrash",
    "arm_from_spec",
    "parse_failpoint_spec",
]
