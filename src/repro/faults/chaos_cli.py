"""``svc-repro chaos`` — run randomized fault schedules against recovery.

Each schedule is a pure function of its seed (base seed + index), so any
reported failure is replayable in isolation::

    svc-repro chaos --schedules 1 --seed <failing-seed> --json

Exit status is 0 only when every schedule upholds the recovery contract
(see :mod:`repro.faults.harness`).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.experiments.config import SCALES
from repro.faults.harness import ChaosResult, run_chaos_suite
from repro.logconfig import LOG_LEVELS, setup_logging


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro chaos",
        description="Drive randomized fault schedules and verify crash recovery.",
    )
    parser.add_argument(
        "--schedules", type=int, default=200,
        help="how many seeded schedules to run (default: 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (schedule i uses seed+i)"
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="tiny",
        help="datacenter scale each schedule runs against (default: tiny)",
    )
    parser.add_argument(
        "--operations", type=int, default=40,
        help="admit/release operations per schedule (default: 40)",
    )
    parser.add_argument(
        "--workdir", type=Path, default=None,
        help="keep durability directories here instead of a temp dir",
    )
    parser.add_argument(
        "--stop-on-failure", action="store_true",
        help="stop at the first failing schedule instead of running all",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON report on stdout instead of progress lines",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="error",
        help="stderr log verbosity (default: error)",
    )
    return parser


def _print_summary(results: List[ChaosResult]) -> None:
    crashed = sum(1 for r in results if r.crashed)
    admits = sum(r.acked_admits for r in results)
    releases = sum(r.acked_releases for r in results)
    shed = sum(r.shed for r in results)
    degraded = sum(r.degraded_hits for r in results)
    retried = sum(r.unacked_keys for r in results)
    failures = [r for r in results if not r.ok]
    print(
        f"chaos: {len(results)} schedule(s), {crashed} crashed mid-run, "
        f"{admits} acked admits, {releases} acked releases, "
        f"{shed} shed, {degraded} degraded refusals, {retried} in-flight retries"
    )
    for result in failures:
        for message in result.failures:
            print(f"  FAIL seed={result.seed}: {message}")
    verdict = "OK" if not failures else f"{len(failures)} schedule(s) FAILED"
    print(f"chaos: {verdict}")


def chaos_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``svc-repro chaos``."""
    args = build_chaos_parser().parse_args(argv)
    setup_logging(args.log_level)

    def progress(result: ChaosResult) -> None:
        if args.json:
            return
        if not result.ok:
            sys.stderr.write(f"seed {result.seed}: FAILED {result.failures}\n")
        elif (result.seed - args.seed + 1) % 25 == 0:
            sys.stderr.write(
                f"... {result.seed - args.seed + 1}/{args.schedules} schedules\n"
            )

    def run(workdir: Path) -> List[ChaosResult]:
        return run_chaos_suite(
            schedules=args.schedules,
            base_seed=args.seed,
            workdir=workdir,
            scale=args.scale,
            operations=args.operations,
            stop_on_failure=args.stop_on_failure,
            progress=progress,
        )

    if args.workdir is not None:
        results = run(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="svc-repro-chaos-") as tmp:
            results = run(Path(tmp))

    if args.json:
        print(json.dumps({"results": [r.describe() for r in results]}, indent=2))
    else:
        _print_summary(results)
    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(chaos_main())
