"""Deterministic, seedable fault injection: named failpoints.

A *failpoint* is a named hook compiled into a production code path —
``journal.write``, ``worker.crash_after_journal``, ``snapshot.write`` and
friends.  In normal operation a hook is one dict lookup on the process-wide
:data:`FAILPOINTS` registry (empty dict -> ``None`` -> fall through), so
shipping the hooks costs effectively nothing.  Arming a failpoint makes
matching calls misbehave in a controlled, reproducible way:

========  ==============================================================
mode      behaviour at the hit site
========  ==============================================================
error     :meth:`FailpointRegistry.hit` raises :class:`FailpointError`
          (an ``OSError``) — models EIO/ENOSPC-style I/O failures.
crash     raises :class:`InjectedCrash` (a ``BaseException``, so generic
          ``except Exception`` recovery code cannot accidentally swallow
          it) or, with ``crash_mode="exit"``, kills the process with
          ``os._exit(137)`` — models power loss / SIGKILL.
delay     sleeps ``delay_s`` then falls through — models slow disks and
          stalled peers.
corrupt   returns the triggered :class:`Failpoint`; the call site is
          responsible for damaging its own payload (torn journal line,
          truncated snapshot).
shed      returns the triggered :class:`Failpoint`; the call site treats
          the resource as saturated (forced queue-full).
========  ==============================================================

Triggering is governed per failpoint by ``probability`` (sampled from the
registry's seeded RNG), ``every`` (deterministic: every N-th call) and
``max_hits`` (stop after N triggers).  Seeding the registry makes a fault
schedule reproducible; with multiple worker threads the *assignment* of
probabilistic triggers to requests can still vary with thread interleaving,
which is why the chaos harness runs single-worker services.

Spec strings (the ``svc-repro serve --failpoints`` syntax)::

    journal.write=error:p=0.01,worker.crash_after_journal=crash:every=50

Every trigger is mirrored onto the ``repro_faults_injected_total`` metric
family (best effort — metrics must never break injection).
"""

from __future__ import annotations

import logging
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

logger = logging.getLogger(__name__)

MODE_ERROR = "error"
MODE_CRASH = "crash"
MODE_DELAY = "delay"
MODE_CORRUPT = "corrupt"
MODE_SHED = "shed"
MODES = (MODE_ERROR, MODE_CRASH, MODE_DELAY, MODE_CORRUPT, MODE_SHED)

# The failpoint names compiled into repro.service (see the module docstrings
# of journal.py / concurrency.py / server.py for the exact hook positions).
FP_JOURNAL_WRITE = "journal.write"
FP_JOURNAL_FSYNC = "journal.fsync"
FP_SNAPSHOT_WRITE = "snapshot.write"
FP_WORKER_BEFORE_JOURNAL = "worker.crash_before_journal"
FP_WORKER_AFTER_JOURNAL = "worker.crash_after_journal"
FP_RELEASE_BEFORE_JOURNAL = "release.crash_before_journal"
FP_RELEASE_AFTER_JOURNAL = "release.crash_after_journal"
FP_RESIZE_BEFORE_JOURNAL = "resize.crash_before_journal"
FP_RESIZE_AFTER_JOURNAL = "resize.crash_after_journal"
FP_QUEUE_ACCEPT = "queue.accept"
FP_SERVER_RESPONSE = "server.response_stall"
# Cluster coordinator sites (repro.cluster.coordinator): placed around the
# two-phase core-link protocol so the chaos referee can kill the
# coordinator between reserve, shard adopt, and commit.
FP_COORD_BEFORE_WAL = "cluster.coordinator.crash_before_wal"
FP_COORD_AFTER_RESERVE = "cluster.coordinator.crash_after_reserve"
FP_COORD_BEFORE_COMMIT = "cluster.coordinator.crash_before_commit"
FP_COORD_AFTER_COMMIT = "cluster.coordinator.crash_after_commit"
FP_COORD_RESIZE_BEFORE_WAL = "cluster.coordinator.crash_before_resize_wal"
FP_COORD_RESIZE_AFTER_WAL = "cluster.coordinator.crash_after_resize_wal"

KNOWN_FAILPOINTS = (
    FP_JOURNAL_WRITE,
    FP_JOURNAL_FSYNC,
    FP_SNAPSHOT_WRITE,
    FP_WORKER_BEFORE_JOURNAL,
    FP_WORKER_AFTER_JOURNAL,
    FP_RELEASE_BEFORE_JOURNAL,
    FP_RELEASE_AFTER_JOURNAL,
    FP_RESIZE_BEFORE_JOURNAL,
    FP_RESIZE_AFTER_JOURNAL,
    FP_QUEUE_ACCEPT,
    FP_SERVER_RESPONSE,
    FP_COORD_BEFORE_WAL,
    FP_COORD_AFTER_RESERVE,
    FP_COORD_BEFORE_COMMIT,
    FP_COORD_AFTER_COMMIT,
    FP_COORD_RESIZE_BEFORE_WAL,
    FP_COORD_RESIZE_AFTER_WAL,
)


class FailpointError(OSError):
    """An injected I/O failure (mode ``error``)."""


class InjectedCrash(BaseException):
    """An injected process death (mode ``crash``).

    Deliberately **not** an ``Exception``: the service's defensive
    ``except Exception`` blocks (allocator bugs, journal I/O) must not be
    able to swallow a simulated crash — a real SIGKILL would not be caught
    either.  Only the chaos harness (and the worker loop's explicit
    crash-simulation handler) catches it.
    """


@dataclass
class Failpoint:
    """One armed failpoint and its trigger bookkeeping."""

    name: str
    mode: str = MODE_ERROR
    #: Trigger probability per call (ignored when ``every`` is set).
    probability: float = 1.0
    #: Deterministic trigger: fire on every N-th call (1-based).
    every: Optional[int] = None
    #: Stop triggering after this many hits (``None`` = unlimited).
    max_hits: Optional[int] = None
    #: Sleep length for mode ``delay``.
    delay_s: float = 0.05
    message: Optional[str] = None
    calls: int = field(default=0, repr=False)
    triggered: int = field(default=0, repr=False)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "mode": self.mode,
            "probability": self.probability,
            "every": self.every,
            "max_hits": self.max_hits,
            "calls": self.calls,
            "triggered": self.triggered,
        }


class FailpointRegistry:
    """Process-wide registry of armed failpoints (see module docstring).

    ``hit(name)`` is the only call production code makes; everything else
    is test/harness/CLI configuration surface.
    """

    def __init__(self, seed: int = 0) -> None:
        self._points: Dict[str, Failpoint] = {}
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        #: ``"raise"`` raises :class:`InjectedCrash` (in-process chaos);
        #: ``"exit"`` calls ``os._exit(137)`` (real daemons, e2e tests).
        self.crash_mode = "raise"

    # -- configuration --------------------------------------------------

    def seed(self, seed: int) -> None:
        """Re-seed the trigger RNG (chaos schedules call this per run)."""
        with self._lock:
            self._rng.seed(seed)

    def arm(self, name: str, mode: str = MODE_ERROR, **options) -> Failpoint:
        """Arm (or re-arm) one failpoint; returns its live record."""
        if mode not in MODES:
            raise ValueError(f"unknown failpoint mode {mode!r}; choose from {MODES}")
        point = Failpoint(name=name, mode=mode, **options)
        if point.every is not None and point.every < 1:
            raise ValueError(f"every must be >= 1, got {point.every}")
        if not 0.0 <= point.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {point.probability}")
        with self._lock:
            self._points[name] = point
        logger.debug("failpoint armed: %s", point.describe())
        return point

    def disarm(self, name: str) -> None:
        with self._lock:
            self._points.pop(name, None)

    def clear(self) -> None:
        """Disarm everything and reset the crash mode."""
        with self._lock:
            self._points.clear()
            self.crash_mode = "raise"

    def armed(self, name: str) -> bool:
        return name in self._points

    def get(self, name: str) -> Optional[Failpoint]:
        return self._points.get(name)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            return [point.describe() for point in self._points.values()]

    # -- the production hook --------------------------------------------

    def hit(
        self, name: str, sleep: Callable[[float], None] = time.sleep
    ) -> Optional[Failpoint]:
        """Evaluate one failpoint at its call site.

        Returns ``None`` when the failpoint is unarmed or did not trigger.
        Modes ``error`` and ``crash`` raise; ``delay`` sleeps and returns
        the failpoint; ``corrupt``/``shed`` return the failpoint for the
        call site to act on.
        """
        point = self._points.get(name)
        if point is None:
            return None
        with self._lock:
            point.calls += 1
            if point.max_hits is not None and point.triggered >= point.max_hits:
                return None
            if point.every is not None:
                fire = point.calls % point.every == 0
            else:
                fire = point.probability >= 1.0 or self._rng.random() < point.probability
            if not fire:
                return None
            point.triggered += 1
        self._record_metric(name)
        self._record_flight(name, point)
        logger.info(
            "failpoint triggered: %s mode=%s hit=%d", name, point.mode, point.triggered
        )
        if point.mode == MODE_DELAY:
            sleep(point.delay_s)
            return point
        if point.mode == MODE_ERROR:
            raise FailpointError(
                point.message or f"injected I/O error at failpoint {name!r}"
            )
        if point.mode == MODE_CRASH:
            if self.crash_mode == "exit":
                os._exit(137)
            raise InjectedCrash(point.message or f"injected crash at failpoint {name!r}")
        return point

    @staticmethod
    def _record_metric(name: str) -> None:
        try:
            from repro.obs.instruments import record_fault

            record_fault(name)
        except Exception:  # metrics must never break fault injection
            pass

    @staticmethod
    def _record_flight(name: str, point: "Failpoint") -> None:
        try:
            from repro.obs.flightrec import flight_recorder

            flight_recorder().record(
                "chaos_injection",
                failpoint=name,
                mode=point.mode,
                hit=point.triggered,
            )
        except Exception:  # the flight recorder must never break injection
            pass


def parse_failpoint_spec(spec: str) -> List[Dict[str, object]]:
    """Parse a ``--failpoints`` spec string into ``arm()`` keyword sets.

    Grammar: comma-separated ``name=mode[:opt=value[:opt=value...]]``.
    Options: ``p``/``probability`` (float), ``every`` (int), ``max_hits``
    (int), ``delay_s`` (float).
    """
    armings: List[Dict[str, object]] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(
                f"bad failpoint spec {chunk!r}: expected name=mode[:opt=value...]"
            )
        name, _, rest = chunk.partition("=")
        parts = rest.split(":")
        mode = parts[0].strip()
        if mode not in MODES:
            raise ValueError(
                f"bad failpoint spec {chunk!r}: unknown mode {mode!r} "
                f"(choose from {', '.join(MODES)})"
            )
        arming: Dict[str, object] = {"name": name.strip(), "mode": mode}
        for option in parts[1:]:
            if "=" not in option:
                raise ValueError(f"bad failpoint option {option!r} in {chunk!r}")
            key, _, value = option.partition("=")
            key = key.strip()
            try:
                if key in ("p", "probability"):
                    arming["probability"] = float(value)
                elif key == "every":
                    arming["every"] = int(value)
                elif key == "max_hits":
                    arming["max_hits"] = int(value)
                elif key == "delay_s":
                    arming["delay_s"] = float(value)
                else:
                    raise ValueError(f"unknown failpoint option {key!r} in {chunk!r}")
            except ValueError as exc:
                raise ValueError(f"bad failpoint spec {chunk!r}: {exc}") from exc
        armings.append(arming)
    return armings


def arm_from_spec(spec: str, registry: Optional[FailpointRegistry] = None) -> int:
    """Arm every failpoint named in a spec string; returns how many."""
    registry = registry if registry is not None else FAILPOINTS
    armings = parse_failpoint_spec(spec)
    for arming in armings:
        name = str(arming.pop("name"))
        mode = str(arming.pop("mode"))
        if name not in KNOWN_FAILPOINTS:
            logger.warning(
                "arming unknown failpoint %r (no compiled hook will hit it)", name
            )
        registry.arm(name, mode=mode, **arming)
    return len(armings)


#: The process-global registry every compiled hook consults.
FAILPOINTS = FailpointRegistry()
