"""Command-line entry point: ``svc-repro <experiment> [--scale ...]``.

Examples::

    svc-repro fig5 --scale small
    svc-repro fig9 --scale tiny --seed 3
    svc-repro all --scale paper        # the full 1,000-machine reproduction
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.config import SCALES
from repro.experiments.runner import EXPERIMENTS, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro",
        description=(
            "Reproduce the evaluation of 'Bandwidth Guarantee under Demand "
            "Uncertainty in Multi-tenant Clouds' (ICDCS 2014)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to reproduce (or 'all')",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="datacenter/workload scale (default: small; 'paper' = 1,000 machines)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also export every result table as CSV into this directory",
    )
    parser.add_argument(
        "--markdown",
        default=None,
        help="also write all results as one Markdown report to this path",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    started = time.time()
    if args.experiment == "all":
        results = run_all(scale=args.scale, seed=args.seed)
    else:
        results = [EXPERIMENTS[args.experiment](scale=args.scale, seed=args.seed)]
    for result in results:
        print(result.format())
        print()
    if args.csv_dir:
        from repro.experiments.export import export_csv

        for result in results:
            for path in export_csv(result, args.csv_dir):
                print(f"[csv] {path}", file=sys.stderr)
    if args.markdown:
        from repro.experiments.export import export_markdown

        path = export_markdown(results, args.markdown)
        print(f"[markdown] {path}", file=sys.stderr)
    print(f"[done in {time.time() - started:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
