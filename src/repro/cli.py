"""Command-line entry point: experiments and the admission daemon.

Examples::

    svc-repro fig5 --scale small
    svc-repro fig9 --scale tiny --seed 3
    svc-repro fig7 --epsilon 0.02               # vary the SLA risk factor
    svc-repro het --allocator baseline          # vary the allocation stack
    svc-repro all --scale paper                 # the full 1,000-machine reproduction
    svc-repro serve --port 0 --journal-dir /var/lib/svc  # admission daemon (async)
    svc-repro serve --batch-max 32 --batch-linger-ms 2   # batched admission
    svc-repro serve --tenant-quota 64 --tenant-weight gold=3  # fair queueing
    svc-repro top --port 40123                  # live metrics view of a daemon
    svc-repro chaos --schedules 200             # fault-injection recovery check
    svc-repro cluster --shards 4 --scale small  # sharded admission cluster
    svc-repro obs dump --port 40123             # flight-recorder + trace dump
"""

from __future__ import annotations

import argparse
import inspect
import logging
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.allocation.dispatch import ALLOCATOR_FACTORIES, allocator_by_name
from repro.experiments.config import SCALES
from repro.experiments.runner import EXPERIMENTS, run_all
from repro.logconfig import LOG_LEVELS, setup_logging

logger = logging.getLogger(__name__)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro",
        description=(
            "Reproduce the evaluation of 'Bandwidth Guarantee under Demand "
            "Uncertainty in Multi-tenant Clouds' (ICDCS 2014), or run the "
            "admission-control daemon ('svc-repro serve --help')."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to reproduce (or 'all'; see also the 'serve' subcommand)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="datacenter/workload scale (default: small; 'paper' = 1,000 machines)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    parser.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="override the SLA risk factor for experiments that take one",
    )
    parser.add_argument(
        "--allocator",
        choices=sorted(ALLOCATOR_FACTORIES),
        default=None,
        help="override the allocation stack for experiments that take one",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep; 1 (default) runs in-process and "
            "is bit-identical to the pre-harness sequential path"
        ),
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help=(
            "checkpoint each completed sweep cell as JSON under this directory "
            "(refused if non-empty unless --resume)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="re-enter --run-dir and skip cells already checkpointed there",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also export every result table as CSV into this directory",
    )
    parser.add_argument(
        "--markdown",
        default=None,
        help="also write all results as one Markdown report to this path",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="stderr log verbosity (default: info)",
    )
    return parser


def experiment_overrides(
    runner: Callable[..., Any],
    epsilon: Optional[float] = None,
    allocator: Optional[str] = None,
) -> Dict[str, Any]:
    """Keyword overrides a given experiment runner actually accepts.

    The experiment modules expose heterogeneous signatures (``epsilon``,
    ``epsilons``, sometimes an ``allocator``); the flags are forwarded to
    whichever parameter exists so every experiment stays overridable
    without per-experiment plumbing.  Unsupported overrides are reported
    on stderr rather than silently dropped.
    """
    parameters = inspect.signature(runner).parameters
    overrides: Dict[str, Any] = {}
    if epsilon is not None:
        if "epsilon" in parameters:
            overrides["epsilon"] = epsilon
        elif "epsilons" in parameters:
            overrides["epsilons"] = (epsilon,)
        else:
            logger.warning(
                "%s takes no epsilon override; ignoring --epsilon",
                getattr(runner, "__module__", runner),
            )
    if allocator is not None:
        if "allocator" in parameters:
            overrides["allocator"] = allocator_by_name(allocator)
        elif "allocator_factory" in parameters:
            overrides["allocator_factory"] = ALLOCATOR_FACTORIES[allocator]
        else:
            logger.warning(
                "%s takes no allocator override; ignoring --allocator",
                getattr(runner, "__module__", runner),
            )
    return overrides


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from repro.service.server import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.service.top import top_main

        return top_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.faults.chaos_cli import chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "cluster":
        from repro.cluster.cluster_cli import cluster_main

        return cluster_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.obs_cli import obs_main

        return obs_main(argv[1:])
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.resume and args.run_dir is None:
        logger.error("--resume requires --run-dir")
        return 2
    from repro.experiments.harness import RunDirError, run_experiments

    started = time.time()
    try:
        if args.experiment == "all":
            results = run_all(
                scale=args.scale,
                seed=args.seed,
                epsilon=args.epsilon,
                allocator=args.allocator,
                workers=args.workers,
                run_dir=args.run_dir,
                resume=args.resume,
            )
        else:
            results = run_experiments(
                [args.experiment],
                scale=args.scale,
                seed=args.seed,
                epsilon=args.epsilon,
                allocator=args.allocator,
                workers=args.workers,
                run_dir=args.run_dir,
                resume=args.resume,
            )
    except RunDirError as error:
        logger.error("%s", error)
        return 2
    for result in results:
        # Result tables are the command's product: stdout, not logging.
        sys.stdout.write(result.format() + "\n\n")
    if args.csv_dir:
        from repro.experiments.export import export_csv

        for result in results:
            for path in export_csv(result, args.csv_dir):
                logger.info("csv written: %s", path)
    if args.markdown:
        from repro.experiments.export import export_markdown

        path = export_markdown(results, args.markdown)
        logger.info("markdown written: %s", path)
    logger.info("done in %.1fs", time.time() - started)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
