"""Metrics federation: merge per-shard registry snapshots into one view.

Each shard worker is its own process with its own process-global
:class:`MetricsRegistry`; the coordinator cannot read them directly.
Instead every shard serves ``registry.snapshot()`` over the existing RPC
channel and this module merges the JSON snapshots into one *federated*
snapshot:

- every per-shard series keeps its identity under an added ``shard`` label;
- counters and histograms additionally fold into a ``shard="all"`` cluster
  aggregate (histograms are rebuilt from their bucket dicts so the existing
  :meth:`Histogram.merge` semantics apply across processes);
- gauges aggregate by *sum* — the families this matters for (free slots,
  queue depth, active tenancies) are extensive quantities, and per-shard
  readings stay available next to the sum for the intensive ones
  (occupancy, rates).

The result has the same shape as ``MetricsRegistry.snapshot()`` so every
existing consumer — ``svc-repro top``, the schema gate, JSON dumps — can
render it unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .registry import Histogram

__all__ = ["merge_snapshots", "histogram_from_snapshot", "federation_meta"]

#: Label value marking the cluster-wide aggregate series.
ALL_SHARDS = "all"


def histogram_from_snapshot(payload: Dict[str, Any]) -> Optional[Histogram]:
    """Rebuild a :class:`Histogram` from its ``snapshot()`` dict.

    The bucket keys carry the bounds (``repr(bound)`` plus ``"+Inf"``), the
    values the per-bucket counts; sum/min/max restore the scalar state.
    Returns ``None`` when the payload is not a histogram snapshot.
    """
    buckets = payload.get("buckets") if isinstance(payload, dict) else None
    if not isinstance(buckets, dict) or not buckets:
        return None
    bounds: List[float] = []
    counts: List[int] = []
    overflow = 0
    for key, count in buckets.items():
        if key == "+Inf":
            overflow = int(count)
        else:
            try:
                bounds.append(float(key))
            except ValueError:
                return None
            counts.append(int(count))
    if not bounds:
        return None
    order = sorted(range(len(bounds)), key=lambda i: bounds[i])
    hist = Histogram([bounds[i] for i in order])
    hist.counts = [counts[i] for i in order] + [overflow]
    hist.count = int(payload.get("count", sum(hist.counts)))
    hist.total = float(payload.get("sum", 0.0))
    if hist.count:
        hist._min = float(payload.get("min", 0.0))
        hist._max = float(payload.get("max", 0.0))
    return hist


def _histogram_aggregate(values: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    merged: Optional[Histogram] = None
    for payload in values:
        hist = histogram_from_snapshot(payload)
        if hist is None:
            continue
        if merged is None:
            merged = hist
        elif hist.bounds == merged.bounds:
            merged.merge(hist)
    return merged.snapshot() if merged is not None else None


def merge_snapshots(
    shard_snapshots: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge per-shard registry snapshots into one federated snapshot.

    ``shard_snapshots`` maps a shard label value (e.g. ``"0"``, ``"1"``,
    ``"coordinator"``) to that process's ``MetricsRegistry.snapshot()``.
    """
    # family -> (kind, help, series rows); aggregate accumulators per family.
    out: Dict[str, Dict[str, Any]] = {}
    aggregates: Dict[str, Dict[Tuple[Tuple[str, str], ...], List[Any]]] = {}

    for shard_label in sorted(shard_snapshots, key=str):
        snapshot = shard_snapshots[shard_label] or {}
        for family_name in sorted(snapshot):
            family = snapshot[family_name]
            if not isinstance(family, dict) or "series" not in family:
                continue
            merged = out.setdefault(
                family_name,
                {
                    "type": family.get("type", "gauge"),
                    "help": family.get("help", ""),
                    "series": [],
                },
            )
            family_agg = aggregates.setdefault(family_name, {})
            for row in family.get("series", []):
                labels = dict(row.get("labels", {}))
                labels["shard"] = str(shard_label)
                merged["series"].append({"labels": labels, "value": row.get("value")})
                base = tuple(sorted(
                    (k, str(v)) for k, v in row.get("labels", {}).items()
                ))
                family_agg.setdefault(base, []).append(row.get("value"))

    # Cluster-wide aggregate series under shard="all".
    for family_name, family in out.items():
        kind = family["type"]
        family_agg = aggregates.get(family_name, {})
        for base_labels, values in sorted(family_agg.items()):
            if len(shard_snapshots) < 2:
                continue  # one source: the aggregate would duplicate it
            if kind == "histogram":
                aggregate = _histogram_aggregate([v for v in values if isinstance(v, dict)])
                if aggregate is None:
                    continue
            else:
                numeric = [v for v in values if isinstance(v, (int, float))]
                if not numeric:
                    continue
                aggregate = float(sum(numeric))
            labels = dict(base_labels)
            labels["shard"] = ALL_SHARDS
            family["series"].append({"labels": labels, "value": aggregate})
    return out


def federation_meta(shard_snapshots: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Sidecar describing where a federated snapshot came from."""
    families = set()
    for snapshot in shard_snapshots.values():
        families.update((snapshot or {}).keys())
    return {"shards": sorted(shard_snapshots, key=str), "families": len(families)}
