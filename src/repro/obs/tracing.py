"""Lightweight span tracing for the admission path.

A *trace* covers one admission request; *spans* are named timed sections
(or accumulated phase totals — the DP phases repeat per vertex, so they are
folded into one span per phase name rather than thousands of events).

Tracing is sampled deterministically: every ``sample_every``-th call to
:meth:`SpanTracer.start` returns a live :class:`Trace`, the rest return
``None`` at the cost of one integer increment — the hot path stays O(1) and
lock-free.  Finished traces land in a bounded ring buffer that the service's
``metrics`` endpoint exposes for inspection.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Trace", "SpanTracer"]


class Span:
    """One timed section inside a trace."""

    __slots__ = ("name", "start_s", "duration_s")

    def __init__(self, name: str, start_s: float, duration_s: float) -> None:
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_ms": 1000.0 * self.start_s,
            "duration_ms": 1000.0 * self.duration_s,
        }


class _SpanContext:
    """Context manager that records one span on exit."""

    __slots__ = ("_trace", "_name", "_t0")

    def __init__(self, trace: "Trace", name: str) -> None:
        self._trace = trace
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        now = time.perf_counter()
        self._trace.spans.append(
            Span(self._name, self._t0 - self._trace.started, now - self._t0)
        )


class Trace:
    """One sampled request: named spans + accumulated phase totals."""

    __slots__ = ("trace_id", "name", "started", "spans", "phases", "meta", "duration_s")

    def __init__(self, trace_id: int, name: str) -> None:
        self.trace_id = trace_id
        self.name = name
        self.started = time.perf_counter()
        self.spans: List[Span] = []
        self.phases: Dict[str, float] = {}
        self.meta: Dict[str, Any] = {}
        self.duration_s: Optional[float] = None

    def span(self, name: str) -> _SpanContext:
        return _SpanContext(self, name)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate repeated work (e.g. per-vertex combine) into one total."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def annotate(self, **meta: Any) -> None:
        self.meta.update(meta)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ms": 1000.0 * (self.duration_s or 0.0),
            "phases_ms": {k: 1000.0 * v for k, v in sorted(self.phases.items())},
            "spans": [span.as_dict() for span in self.spans],
            "meta": dict(self.meta),
        }


class SpanTracer:
    """Sampled trace source plus a ring buffer of finished traces."""

    def __init__(self, sample_every: int = 64, keep: int = 128) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._calls = 0
        self._next_id = 1
        self._finished: deque = deque(maxlen=keep)

    def start(self, name: str) -> Optional[Trace]:
        """A live trace for every ``sample_every``-th call, else None."""
        self._calls += 1
        if self._calls % self.sample_every != 0:
            return None
        trace = Trace(self._next_id, name)
        self._next_id += 1
        return trace

    def finish(self, trace: Trace) -> None:
        trace.duration_s = time.perf_counter() - trace.started
        self._finished.append(trace)

    @property
    def sampled_count(self) -> int:
        return self._next_id - 1

    @property
    def call_count(self) -> int:
        return self._calls

    def recent(self, limit: int = 16) -> List[Dict[str, Any]]:
        """Most recent finished traces, newest last, JSON-serializable."""
        traces = list(self._finished)[-limit:]
        return [trace.as_dict() for trace in traces]
