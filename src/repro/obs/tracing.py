"""Lightweight span tracing for the admission path.

A *trace* covers one admission request; *spans* are named timed sections
(or accumulated phase totals — the DP phases repeat per vertex, so they are
folded into one span per phase name rather than thousands of events).

Tracing is sampled deterministically: every ``sample_every``-th call to
:meth:`SpanTracer.start` returns a live :class:`Trace`, the rest return
``None`` at the cost of one integer increment — the hot path stays O(1) and
lock-free.  Finished traces land in a bounded ring buffer that the service's
``metrics`` endpoint exposes for inspection.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Trace",
    "SpanTracer",
    "TraceContext",
    "activate_context",
    "current_context",
    "record_remote_span",
    "take_remote_spans",
]


class Span:
    """One timed section inside a trace."""

    __slots__ = ("name", "start_s", "duration_s")

    def __init__(self, name: str, start_s: float, duration_s: float) -> None:
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_ms": 1000.0 * self.start_s,
            "duration_ms": 1000.0 * self.duration_s,
        }


class _SpanContext:
    """Context manager that records one span on exit."""

    __slots__ = ("_trace", "_name", "_t0")

    def __init__(self, trace: "Trace", name: str) -> None:
        self._trace = trace
        self._name = name

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        now = time.perf_counter()
        self._trace.spans.append(
            Span(self._name, self._t0 - self._trace.started, now - self._t0)
        )


class Trace:
    """One sampled request: named spans + accumulated phase totals."""

    __slots__ = (
        "trace_id", "name", "started", "spans", "phases", "meta",
        "duration_s", "remote",
    )

    def __init__(self, trace_id: int, name: str) -> None:
        self.trace_id = trace_id
        self.name = name
        self.started = time.perf_counter()
        self.spans: List[Span] = []
        self.phases: Dict[str, float] = {}
        self.meta: Dict[str, Any] = {}
        self.duration_s: Optional[float] = None
        #: Spans produced by *other processes* on this trace's behalf
        #: (plain dicts carrying their own pid — clocks are not aligned
        #: across processes, so they nest instead of sharing a timeline).
        self.remote: List[Dict[str, Any]] = []

    def span(self, name: str) -> _SpanContext:
        return _SpanContext(self, name)

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate repeated work (e.g. per-vertex combine) into one total."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def annotate(self, **meta: Any) -> None:
        self.meta.update(meta)

    def add_remote(self, span: Dict[str, Any]) -> None:
        self.remote.append(dict(span))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ms": 1000.0 * (self.duration_s or 0.0),
            "phases_ms": {k: 1000.0 * v for k, v in sorted(self.phases.items())},
            "spans": [span.as_dict() for span in self.spans],
            "remote_spans": [dict(span) for span in self.remote],
            "meta": dict(self.meta),
        }


class TraceContext:
    """Serializable identity of one distributed trace.

    Crosses the coordinator→shard RPC boundary as a plain dict so that a
    sampled admission keeps a single ``trace_id`` across processes.  The
    context itself records nothing; it only says *whether* the request is
    sampled and under which id, so remote participants can force-sample
    their local work and tag the spans they emit.
    """

    __slots__ = ("trace_id", "parent", "sampled")

    def __init__(self, trace_id: str, parent: str = "", sampled: bool = True) -> None:
        self.trace_id = str(trace_id)
        self.parent = str(parent)
        self.sampled = bool(sampled)

    def child(self, parent: str) -> "TraceContext":
        return TraceContext(self.trace_id, parent=parent, sampled=self.sampled)

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "parent": self.parent, "sampled": self.sampled}

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        if not isinstance(payload, dict) or "trace_id" not in payload:
            return None
        return cls(
            str(payload["trace_id"]),
            parent=str(payload.get("parent", "")),
            sampled=bool(payload.get("sampled", True)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace_id={self.trace_id!r}, parent={self.parent!r})"


_ACTIVE = threading.local()


def activate_context(context: Optional[TraceContext]) -> "_ContextScope":
    """Bind ``context`` to the current thread for the duration of a ``with``.

    The admission worker activates the request's context around the
    allocator call so that :meth:`AdmissionInstruments.start` — which has no
    request in scope — can discover it and force-sample the local trace.
    """
    return _ContextScope(context)


def current_context() -> Optional[TraceContext]:
    return getattr(_ACTIVE, "context", None)


class _ContextScope:
    __slots__ = ("_context", "_previous")

    def __init__(self, context: Optional[TraceContext]) -> None:
        self._context = context

    def __enter__(self) -> Optional[TraceContext]:
        self._previous = getattr(_ACTIVE, "context", None)
        _ACTIVE.context = self._context
        return self._context

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.context = self._previous


# Spans produced on behalf of a remote trace, keyed by trace_id and stamped
# with this process's pid.  A shard worker records its allocator spans here;
# the RPC reply carries them back so the coordinator can fold them into the
# one end-to-end trace.  Bounded so an abandoned trace cannot leak memory.
_REMOTE_SPANS: "deque" = deque(maxlen=256)
_REMOTE_LOCK = threading.Lock()


def record_remote_span(trace_id: str, span: Dict[str, Any]) -> None:
    entry = dict(span)
    entry.setdefault("pid", os.getpid())
    with _REMOTE_LOCK:
        _REMOTE_SPANS.append((str(trace_id), entry))


def take_remote_spans(trace_id: str) -> List[Dict[str, Any]]:
    """Remove and return every buffered span recorded for ``trace_id``."""
    wanted = str(trace_id)
    with _REMOTE_LOCK:
        taken = [span for tid, span in _REMOTE_SPANS if tid == wanted]
        if taken:
            remaining = [(tid, span) for tid, span in _REMOTE_SPANS if tid != wanted]
            _REMOTE_SPANS.clear()
            _REMOTE_SPANS.extend(remaining)
    return taken


class SpanTracer:
    """Sampled trace source plus a ring buffer of finished traces.

    ``phase`` offsets the deterministic every-Nth counter.  Spawned shard
    workers all start with ``_calls == 0``, so without an offset every
    worker samples the same startup-biased Nth pattern (calls N, 2N, ...);
    seeding the phase from the shard index staggers which calls each worker
    samples while keeping the long-run rate at exactly 1/N.
    """

    def __init__(self, sample_every: int = 64, keep: int = 128, phase: int = 0) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self._calls = int(phase)
        self._phase = int(phase)
        self._next_id = 1
        self._finished: deque = deque(maxlen=keep)

    def start(self, name: str, context: Optional[TraceContext] = None) -> Optional[Trace]:
        """A live trace for every ``sample_every``-th call, else None.

        A sampled :class:`TraceContext` (passed explicitly or active on the
        thread) forces a live trace regardless of the counter, so a
        distributed trace never loses a leg to local sampling.
        """
        self._calls += 1
        forced = context if context is not None else current_context()
        if forced is not None and forced.sampled:
            trace = Trace(self._next_id, name)
            self._next_id += 1
            trace.annotate(trace_id_global=forced.trace_id)
            return trace
        if self._calls % self.sample_every != 0:
            return None
        trace = Trace(self._next_id, name)
        self._next_id += 1
        return trace

    def finish(self, trace: Trace) -> None:
        trace.duration_s = time.perf_counter() - trace.started
        self._finished.append(trace)

    @property
    def sampled_count(self) -> int:
        return self._next_id - 1

    @property
    def call_count(self) -> int:
        return self._calls - self._phase

    def recent(self, limit: int = 16) -> List[Dict[str, Any]]:
        """Most recent finished traces, newest last, JSON-serializable."""
        traces = list(self._finished)[-limit:]
        return [trace.as_dict() for trace in traces]
