"""Flight recorder: a bounded per-process ring of structured wide events.

Every consequential decision on the admission path — admit/reject with the
reject reason, degradation-ladder transitions, two-phase reservation aborts,
WAL append errors, chaos injections — lands here as one structured event.
The ring is cheap enough to leave on (an append into a bounded deque under a
short lock) and small enough to dump whole: on a crash, a degradation
transition, or ``SIGUSR2`` the recorder writes its contents to a JSON file,
turning "the chaos referee failed" into a post-mortem artifact that replays
the exact decision sequence.

Dump files are named ``flight-<pid>-<seq>.json`` inside the configured
directory (``configure_flight_recorder``); ``svc-repro obs dump`` collects
them cluster-wide.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "flight_recorder",
    "configure_flight_recorder",
    "reset_flight_recorder",
]

#: Ring capacity.  512 wide events ≈ the last few seconds of a busy shard —
#: enough to replay the decision sequence leading up to a failure.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of structured events with trigger-driven JSON dumps."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dump_seq = 0
        self.dump_dir: Optional[str] = None
        self.auto_dump = True
        # Metric-mirror cache: counter children resolved once per kind, not
        # per event — keyed off the live registry object so a test-time
        # registry reset transparently invalidates the cache.
        self._counter_cache: Dict[str, Any] = {}
        self._cache_registry: Any = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Append one wide event; never raises (the hot path must not care)."""
        try:
            event = {
                "seq": None,  # assigned under the lock below
                "ts": time.time(),
                "pid": os.getpid(),
                "kind": str(kind),
            }
            event.update(fields)
            with self._lock:
                self._seq += 1
                event["seq"] = self._seq
                self._events.append(event)
            self._count_event(kind)
        except Exception:  # pragma: no cover - defensive, by contract
            pass

    def _count_event(self, kind: str) -> None:
        # Best-effort mirror into the metrics registry (the same lazy-import
        # pattern failpoints use): the recorder works even when obs is off.
        try:
            from repro.obs.instruments import enabled, global_registry

            if not enabled():
                return
            registry = global_registry()
            if registry is not self._cache_registry:
                self._counter_cache.clear()
                self._cache_registry = registry
            counter = self._counter_cache.get(kind)
            if counter is None:
                counter = registry.counter(
                    "repro_flight_events_total",
                    "Flight-recorder events recorded, by kind.",
                    kind=str(kind),
                )
                self._counter_cache[kind] = counter
            counter.inc()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Inspection and dumping
    # ------------------------------------------------------------------

    def events(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Current ring contents, oldest first, JSON-serializable."""
        with self._lock:
            events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return [dict(event) for event in events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def dump_to(self, path: str, trigger: str = "manual") -> Dict[str, Any]:
        """Write the ring to ``path`` as one JSON document; returns the payload."""
        payload = {
            "pid": os.getpid(),
            "trigger": trigger,
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "recorded_total": self._seq,
            "events": self.events(),
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
        self._count_dump(trigger)
        return payload

    def maybe_dump(self, trigger: str) -> Optional[str]:
        """Dump to the configured directory if one is set; never raises.

        Returns the written path, or ``None`` when no directory is
        configured, auto-dump is disabled, or the write failed.
        """
        if not self.auto_dump or not self.dump_dir:
            return None
        try:
            with self._lock:
                self._dump_seq += 1
                seq = self._dump_seq
            path = os.path.join(self.dump_dir, f"flight-{os.getpid()}-{seq}.json")
            self.dump_to(path, trigger=trigger)
            return path
        except Exception:  # pragma: no cover - dump failure must not cascade
            return None

    def _count_dump(self, trigger: str) -> None:
        try:
            from repro.obs.instruments import enabled, global_registry

            if enabled():
                global_registry().counter(
                    "repro_flight_dumps_total",
                    "Flight-recorder dumps written, by trigger.",
                    trigger=str(trigger),
                ).inc()
        except Exception:
            pass


_RECORDER: Optional[FlightRecorder] = None
_RECORDER_LOCK = threading.Lock()


def flight_recorder() -> FlightRecorder:
    """The process-global recorder (created on first use)."""
    global _RECORDER
    if _RECORDER is None:
        with _RECORDER_LOCK:
            if _RECORDER is None:
                _RECORDER = FlightRecorder()
    return _RECORDER


def configure_flight_recorder(
    dump_dir: Optional[str] = None, auto_dump: Optional[bool] = None
) -> FlightRecorder:
    recorder = flight_recorder()
    if dump_dir is not None:
        recorder.dump_dir = str(dump_dir)
    if auto_dump is not None:
        recorder.auto_dump = bool(auto_dump)
    return recorder


def reset_flight_recorder() -> None:
    """Drop the global recorder (tests only; the next use recreates it)."""
    global _RECORDER
    with _RECORDER_LOCK:
        _RECORDER = None
