"""repro.obs — observability: metrics registry, admission tracing, telemetry.

The paper's product is a *probabilistic* guarantee — ``Pr(sum B_i > S_L) <
epsilon`` (Eq. 1) validated through per-link occupancy ``O_L`` (Eq. 6) —
and this package makes both observable at runtime:

- :mod:`repro.obs.registry` — dependency-free counters, gauges and
  fixed-bucket histograms with Prometheus text exposition and JSON
  snapshots;
- :mod:`repro.obs.tracing` — a sampled span tracer for the admission path;
- :mod:`repro.obs.instruments` — the process-global registry plus the
  pre-wired facades the allocator, the simulation data plane and the
  admission service write into;
- :mod:`repro.obs.schema` — the checked-in metric-name contract CI guards.

Instrumentation is on by default and cheap (O(1) counters, sampled spans);
``configure(enabled=False)`` swaps in no-op facades for overhead A/B runs.
"""

from repro.obs.instruments import (
    AdmissionInstruments,
    OutageMonitor,
    ServiceInstruments,
    admission_instruments,
    bind_network_gauges,
    configure,
    enabled,
    global_registry,
    outage_monitor,
    reset_global_registry,
    service_instruments,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ShardedHistogram,
)
from repro.obs.tracing import Span, SpanTracer, Trace

__all__ = [
    "AdmissionInstruments",
    "OutageMonitor",
    "ServiceInstruments",
    "admission_instruments",
    "service_instruments",
    "bind_network_gauges",
    "configure",
    "enabled",
    "global_registry",
    "outage_monitor",
    "reset_global_registry",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ShardedHistogram",
    "Span",
    "SpanTracer",
    "Trace",
]
