"""Dependency-free metrics primitives: counters, gauges, histograms, registry.

The registry is the single sink every instrumented layer writes into and the
single source the service's ``metrics`` endpoint reads from.  Design rules:

- **Cheap writes.**  ``Counter.inc`` and ``Histogram.observe`` are a few
  attribute operations with no locking — safe under the GIL for the
  at-most-one-writer-per-metric discipline the instruments follow (the
  admission path runs under the service lock; per-thread histogram shards
  exist for genuinely concurrent writers).
- **Pull-style gauges.**  A gauge may wrap a callback; it is only evaluated
  when a snapshot or exposition is rendered, so wiring a gauge to a live
  ``NetworkManager`` costs nothing between scrapes.
- **JSON-clean snapshots.**  ``MetricsRegistry.snapshot()`` returns only
  ``str``/``int``/``float``/``list``/``dict`` — it must survive
  ``json.dumps`` unmodified because it rides the service's line-JSON
  protocol.
- **Prometheus text exposition** (`render_prometheus`) for scrapers, with
  the conventional ``_bucket``/``_sum``/``_count`` histogram series.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ShardedHistogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Default latency buckets in seconds: 100us .. ~100s, roughly x2.5 apart.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 100.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format (0.0.4)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(items: LabelItems, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(items) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing event count."""

    kind = "counter"
    __slots__ = ("labels", "_value")

    def __init__(self, labels: LabelItems = ()) -> None:
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Any:
        return self._value


class Gauge:
    """A point-in-time value, set directly or computed by a callback."""

    kind = "gauge"
    __slots__ = ("labels", "_value", "_fn")

    def __init__(self, labels: LabelItems = ()) -> None:
        self.labels = labels
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Bind a pull callback; re-binding replaces the previous one."""
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                # A dead callback (e.g. a torn-down manager) must not break
                # the whole exposition; report NaN-free zero instead.
                return 0.0
        return self._value

    def snapshot(self) -> Any:
        value = self.value
        return value if math.isfinite(value) else 0.0


class Histogram:
    """Fixed-bucket histogram with O(log B) observe and percentile estimates.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket catches
    everything above the last bound.  Percentiles are estimated by linear
    interpolation inside the covering bucket, so their error is bounded by
    the bucket width — the classic fixed-cost trade against exact reservoirs.
    """

    kind = "histogram"
    __slots__ = ("labels", "bounds", "counts", "total", "count", "_min", "_max")

    def __init__(
        self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS, labels: LabelItems = ()
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {buckets}")
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last entry = +inf bucket
        self.total = 0.0
        self.count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # ------------------------------------------------------------------
    # Estimation and merge
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimated ``pct``-th percentile (0 for an empty histogram).

        The rank is located in cumulative bucket counts and interpolated
        linearly across the covering bucket; the overflow bucket reports the
        exact observed maximum (its width is unbounded, so interpolation
        would be meaningless there).
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.bounds):  # overflow bucket
                    return self._max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else min(self._min, upper)
                if bucket_count == 0 or upper == lower:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self._max  # pct == 100 with float round-off

    def merge(self, other: "Histogram") -> None:
        """Fold another shard with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.total += other.total
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def copy_empty(self) -> "Histogram":
        return Histogram(self.bounds, labels=self.labels)

    def snapshot(self) -> Any:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self.counts)
            },
        }


class ShardedHistogram:
    """Per-thread histogram shards, merged at read time.

    For writers that genuinely race (no shared lock), each thread observes
    into its own shard; ``merged()`` folds all shards into one
    :class:`Histogram` for reporting.  Shard registration takes a lock once
    per thread; observations are lock-free thereafter.
    """

    kind = "histogram"

    def __init__(
        self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS, labels: LabelItems = ()
    ) -> None:
        self.labels = labels
        self._buckets = tuple(float(b) for b in buckets)
        self._local = threading.local()
        self._shards: List[Histogram] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = Histogram(self._buckets, labels=self.labels)
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        shard.observe(value)

    def merged(self) -> Histogram:
        merged = Histogram(self._buckets, labels=self.labels)
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            merged.merge(shard)
        return merged

    @property
    def count(self) -> int:
        return self.merged().count

    def percentile(self, pct: float) -> float:
        return self.merged().percentile(pct)

    def snapshot(self) -> Any:
        return self.merged().snapshot()


class _Family:
    """All children of one metric name, one per label combination."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelItems, Any] = {}


_VALID_KINDS = {"counter", "gauge", "histogram"}


class MetricsRegistry:
    """Named metric families with label support.

    ``counter``/``gauge``/``histogram`` return the existing child when the
    (name, labels) pair is already registered, so call sites can re-resolve
    idempotently; registering one name with two different kinds raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._child(name, "counter", help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._child(name, "gauge", help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        sharded: bool = False,
        **labels: str,
    ):
        factory = (
            (lambda items: ShardedHistogram(buckets, labels=items))
            if sharded
            else (lambda items: Histogram(buckets, labels=items))
        )
        return self._child(name, "histogram", help_text, labels, factory)

    def _child(self, name, kind, help_text, labels, factory):
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        items = _label_items(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, cannot re-register as {kind}"
                )
            child = family.children.get(items)
            if child is None:
                child = factory(items)
                family.children[items] = child
            return child

    def get(self, name: str, **labels: str) -> Optional[Any]:
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_items(labels))

    def family_names(self) -> List[str]:
        return sorted(self._families)

    def families(self) -> Iterable[_Family]:
        for name in sorted(self._families):
            yield self._families[name]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable view of every metric, grouped by family."""
        out: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for items, child in sorted(family.children.items()):
                series.append({"labels": dict(items), "value": child.snapshot()})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for items, child in sorted(family.children.items()):
                if family.kind == "histogram":
                    hist = child.merged() if isinstance(child, ShardedHistogram) else child
                    cumulative = 0
                    for index, bucket_count in enumerate(hist.counts):
                        cumulative += bucket_count
                        bound = (
                            "+Inf"
                            if index == len(hist.bounds)
                            else _format_float(hist.bounds[index])
                        )
                        label_text = _format_labels(items, [("le", bound)])
                        lines.append(f"{family.name}_bucket{label_text} {cumulative}")
                    label_text = _format_labels(items)
                    lines.append(f"{family.name}_sum{label_text} {_format_float(hist.total)}")
                    lines.append(f"{family.name}_count{label_text} {hist.count}")
                else:
                    label_text = _format_labels(items)
                    lines.append(f"{family.name}{label_text} {_format_float(child.value)}")
        return "\n".join(lines) + "\n"


def _format_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
