"""Pre-wired instrument sets binding the metric registry to the system layers.

This module owns the **process-global registry** (the one the service's
``metrics`` endpoint serves) and the instrument facades the hot paths call:

- :func:`admission_instruments` — allocator-side tracing and counters
  (DP phase timings, table-cache hit rates, rejection reasons);
- :func:`outage_monitor` — the empirical Eq.-(1) violation counter fed by
  the simulation engine's data plane;
- :func:`bind_network_gauges` — pull gauges over a live ``NetworkManager``
  (per-level occupancy ``O_L``, headroom ``S_L - sum mu_i``, tenant count).

Everything is cheap-by-default: counters are O(1) increments, phase timing
only happens on sampled traces, and :func:`configure` can disable the whole
layer (swapping in no-op facades) for overhead A/B measurements —
``benchmarks/bench_obs_overhead.py`` gates the difference at <= 5%.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import SpanTracer, Trace

__all__ = [
    "global_registry",
    "reset_global_registry",
    "configure",
    "enabled",
    "admission_instruments",
    "AdmissionInstruments",
    "service_instruments",
    "ServiceInstruments",
    "record_fault",
    "experiment_instruments",
    "ExperimentInstruments",
    "outage_monitor",
    "OutageMonitor",
    "bind_network_gauges",
    "cluster_instruments",
    "ClusterInstruments",
    "PHASE_PRUNE",
    "PHASE_TABLE_BUILD",
    "PHASE_BATCH_OCCUPANCY",
    "PHASE_COMBINE",
    "PHASE_ALLOC",
    "REASON_NO_FREE_SLOTS",
    "REASON_NO_FEASIBLE_SUBTREE",
]

#: Buckets for allocate/phase timings: 20us .. 10s.
_ALLOC_BUCKETS: Tuple[float, ...] = (
    0.00002, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)

#: Buckets for admission batch sizes (requests per dispatch).
_BATCH_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

# Fast-DP phase names (Algorithm 1 stages, see DESIGN.md).
PHASE_PRUNE = "prune"
PHASE_TABLE_BUILD = "table_build"
PHASE_BATCH_OCCUPANCY = "batch_occupancy"
PHASE_COMBINE = "combine"
PHASE_ALLOC = "alloc"

# Allocator-level rejection reasons.
REASON_NO_FREE_SLOTS = "no_free_slots"
REASON_NO_FEASIBLE_SUBTREE = "no_feasible_subtree"

_REGISTRY = MetricsRegistry()
_ENABLED = True
_SAMPLE_EVERY = 64
_SAMPLE_PHASE = 0


def global_registry() -> MetricsRegistry:
    """The process-wide registry served by the ``metrics`` endpoint."""
    return _REGISTRY


def enabled() -> bool:
    return _ENABLED


def configure(
    enabled: Optional[bool] = None,
    sample_every: Optional[int] = None,
    sample_phase: Optional[int] = None,
) -> None:
    """Flip instrumentation on/off or retune trace sampling at runtime.

    Disabling swaps the admission facade for a shared no-op object, so the
    allocator hot path pays a single global read and nothing else — the
    baseline side of the overhead benchmark.

    ``sample_phase`` staggers the deterministic every-Nth sampler between
    processes: spawned shard workers seed it from their shard index so the
    cluster does not sample the same startup-biased Nth calls on every
    shard.  Applying it resets the live tracer's call counter to the phase.
    """
    global _ENABLED, _SAMPLE_EVERY, _SAMPLE_PHASE, _ADMISSION
    if enabled is not None:
        _ENABLED = bool(enabled)
    if sample_every is not None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        _SAMPLE_EVERY = int(sample_every)
        if _ADMISSION is not None:
            _ADMISSION.tracer.sample_every = _SAMPLE_EVERY
    if sample_phase is not None:
        if sample_phase < 0:
            raise ValueError(f"sample_phase must be >= 0, got {sample_phase}")
        _SAMPLE_PHASE = int(sample_phase)
        if _ADMISSION is not None:
            _ADMISSION.tracer._calls = _SAMPLE_PHASE
            _ADMISSION.tracer._phase = _SAMPLE_PHASE


def reset_global_registry() -> MetricsRegistry:
    """Fresh global registry (tests only — live gauges are left behind)."""
    global _REGISTRY, _ADMISSION, _OUTAGE, _SERVICE, _EXPERIMENT, _CLUSTER
    _REGISTRY = MetricsRegistry()
    _ADMISSION = None
    _OUTAGE = None
    _SERVICE = None
    _EXPERIMENT = None
    _CLUSTER = None
    return _REGISTRY


# ----------------------------------------------------------------------
# Admission (allocator) instruments
# ----------------------------------------------------------------------


class AdmissionInstruments:
    """Counters + sampled tracer for the allocator admission path.

    One instance serves every allocator in the process; per-allocator and
    per-reason children are resolved once and cached in plain dicts so the
    per-request cost is a couple of dict lookups and integer adds.
    """

    enabled = True

    def __init__(
        self, registry: MetricsRegistry, sample_every: int = 64, phase: int = 0
    ) -> None:
        self.registry = registry
        self.tracer = SpanTracer(sample_every=sample_every, phase=phase)
        self._requests: Dict[str, Counter] = {}
        self._admitted: Dict[str, Counter] = {}
        self._rejected: Dict[Tuple[str, str], Counter] = {}
        self._allocate_hist: Dict[str, Histogram] = {}
        self._phase_hist: Dict[str, Histogram] = {}
        self._cache_lookups: Dict[str, Counter] = {}
        self._cache_hits: Dict[str, Counter] = {}
        # Touch the stable families once so the exposition carries them from
        # process start (schema checks rely on presence, not traffic).
        for cache in ("machine", "vertex"):
            self._cache_counter(cache)
        for phase in (
            PHASE_PRUNE, PHASE_TABLE_BUILD, PHASE_BATCH_OCCUPANCY,
            PHASE_COMBINE, PHASE_ALLOC,
        ):
            self._phase(phase)

    # -- child resolution (cached) -------------------------------------

    def _for_allocator(self, name: str) -> None:
        registry = self.registry
        self._requests[name] = registry.counter(
            "repro_admission_requests_total",
            "Admission (allocate) attempts per allocator.",
            allocator=name,
        )
        self._admitted[name] = registry.counter(
            "repro_admission_admitted_total",
            "Successful placements per allocator.",
            allocator=name,
        )
        self._allocate_hist[name] = registry.histogram(
            "repro_admission_allocate_seconds",
            "Wall time of one allocate() decision.",
            buckets=_ALLOC_BUCKETS,
            allocator=name,
        )

    def _rejection_counter(self, allocator: str, reason: str) -> Counter:
        key = (allocator, reason)
        counter = self._rejected.get(key)
        if counter is None:
            counter = self.registry.counter(
                "repro_admission_rejected_total",
                "Rejected placements per allocator and reason.",
                allocator=allocator,
                reason=reason,
            )
            self._rejected[key] = counter
        return counter

    def _phase(self, phase: str) -> Histogram:
        hist = self._phase_hist.get(phase)
        if hist is None:
            hist = self.registry.histogram(
                "repro_admission_phase_seconds",
                "Per-request wall time of one fast-DP phase (sampled traces).",
                buckets=_ALLOC_BUCKETS,
                phase=phase,
            )
            self._phase_hist[phase] = hist
        return hist

    def _cache_counter(self, cache: str) -> Tuple[Counter, Counter]:
        lookups = self._cache_lookups.get(cache)
        if lookups is None:
            lookups = self.registry.counter(
                "repro_admission_cache_lookups_total",
                "DP table cache probes (machine = per-free-slot tables, "
                "vertex = per-signature rack tables).",
                cache=cache,
            )
            self._cache_lookups[cache] = lookups
            self._cache_hits[cache] = self.registry.counter(
                "repro_admission_cache_hits_total",
                "DP table cache probes answered by a shared table.",
                cache=cache,
            )
        return lookups, self._cache_hits[cache]

    # -- hot-path API ---------------------------------------------------

    def start(self, allocator: str) -> Optional[Trace]:
        """Begin one admission decision; a Trace only when sampled."""
        if allocator not in self._requests:
            self._for_allocator(allocator)
        self._requests[allocator].inc()
        return self.tracer.start(allocator)

    def done(
        self,
        allocator: str,
        duration_s: float,
        admitted: bool,
        reason: Optional[str] = None,
        trace: Optional[Trace] = None,
        n_vms: int = 0,
    ) -> None:
        """Finish one admission decision started with :meth:`start`."""
        self._allocate_hist[allocator].observe(duration_s)
        if admitted:
            self._admitted[allocator].inc()
        else:
            self._rejection_counter(
                allocator, reason or REASON_NO_FEASIBLE_SUBTREE
            ).inc()
        if trace is not None:
            for phase, seconds in trace.phases.items():
                self._phase(phase).observe(seconds)
            trace.annotate(
                allocator=allocator,
                admitted=admitted,
                reason=reason,
                n_vms=n_vms,
            )
            self.tracer.finish(trace)

    def cache(self, cache: str, lookups: int, hits: int) -> None:
        """Fold one request's cache statistics in (O(1) per request)."""
        if lookups <= 0:
            return
        lookup_counter, hit_counter = self._cache_counter(cache)
        lookup_counter.inc(lookups)
        if hits > 0:
            hit_counter.inc(hits)


class _NullAdmission:
    """Shape-compatible no-op facade used while instrumentation is disabled."""

    enabled = False
    tracer = None

    def start(self, allocator: str) -> None:
        return None

    def done(self, *args, **kwargs) -> None:
        pass

    def cache(self, *args, **kwargs) -> None:
        pass


_NULL_ADMISSION = _NullAdmission()
_ADMISSION: Optional[AdmissionInstruments] = None


def admission_instruments():
    """The live admission facade, or the shared no-op when disabled."""
    global _ADMISSION
    if not _ENABLED:
        return _NULL_ADMISSION
    if _ADMISSION is None:
        _ADMISSION = AdmissionInstruments(
            _REGISTRY, sample_every=_SAMPLE_EVERY, phase=_SAMPLE_PHASE
        )
    return _ADMISSION


# ----------------------------------------------------------------------
# Service-layer instruments
# ----------------------------------------------------------------------


class ServiceInstruments:
    """Counters, latency histogram and live gauges for the admission service.

    The service's legacy ``stats()`` integers stay authoritative for the
    line-JSON ``stats`` op; this mirrors every increment onto the registry
    so the ``metrics`` endpoint and Prometheus scrapers see the same story
    with standard metric semantics.
    """

    #: Mirror of :class:`repro.service.concurrency.ServiceCounters` fields.
    EVENTS = (
        "submitted",
        "admitted",
        "rejected",
        "expired",
        "released",
        "retries",
        "errors",
        "shed",
        "deduped",
        "batches",
        "coalesced",
        "resized",
        "resize_rejected",
    )

    #: Resize outcome label values (mirror of the manager's tallies).
    RESIZE_OUTCOMES = ("in_place", "replaced", "rejected")

    #: Load-shedding reasons (the typed error codes a shed maps to).
    SHED_REASONS = ("overloaded", "read_only", "unavailable", "over_quota")

    #: Degradation-ladder states a transition can land in.
    DEGRADATION_STATES = ("full", "read_only", "fast_fail")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._events: Dict[str, Counter] = {
            name: registry.counter(
                "repro_service_events_total",
                "Admission-service lifecycle events (submit/decision/release).",
                event=name,
            )
            for name in self.EVENTS
        }
        self._latency = registry.histogram(
            "repro_service_admission_latency_seconds",
            "End-to-end admission latency: enqueue to decision, queueing included.",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self._batch_size = registry.histogram(
            "repro_service_batch_size",
            "Coalesced requests dispatched per admission batch.",
            buckets=_BATCH_BUCKETS,
        )
        # Presence-before-traffic: all three outcome series exist from the
        # first scrape, so dashboards can rate() them without gaps.
        self._resize_outcomes: Dict[str, Counter] = {
            outcome: registry.counter(
                "repro_resize_total",
                "Elastic resize operations, by outcome.",
                outcome=outcome,
            )
            for outcome in self.RESIZE_OUTCOMES
        }
        self._resize_latency = registry.histogram(
            "repro_service_resize_latency_seconds",
            "End-to-end resize latency under the service lock.",
            buckets=DEFAULT_TIME_BUCKETS,
        )
        self._tenant_sheds: Dict[str, Counter] = {
            "none": registry.counter(
                "repro_service_tenant_shed_total",
                "Over-quota sheds, by tenant.",
                tenant="none",
            )
        }
        self._tenant_depths: Dict[str, object] = {}
        # Presence-before-traffic for the per-tenant depth gauge family.
        registry.gauge(
            "repro_service_tenant_queue_depth",
            "Waiting requests (ready + parked) per tenant.",
            tenant="none",
        )
        self._shed: Dict[str, Counter] = {
            reason: registry.counter(
                "repro_service_shed_total",
                "Requests refused with a typed load-shedding error, by reason.",
                reason=reason,
            )
            for reason in self.SHED_REASONS
        }
        self._transitions: Dict[str, Counter] = {
            state: registry.counter(
                "repro_service_degradation_transitions_total",
                "Degradation-ladder transitions, by destination state.",
                to=state,
            )
            for state in self.DEGRADATION_STATES
        }
        # Presence-before-traffic: the fault counter family must appear in
        # the exposition even in processes that never inject a fault.
        registry.counter(
            "repro_faults_injected_total",
            "Failpoint triggers, by failpoint name.",
            failpoint="none",
        )
        # Same for the flight recorder, whose writes are lazy best-effort.
        registry.counter(
            "repro_flight_events_total",
            "Flight-recorder events recorded, by kind.",
            kind="none",
        )
        registry.counter(
            "repro_flight_dumps_total",
            "Flight-recorder dumps written, by trigger.",
            trigger="none",
        )
        # The metrics endpoint must always carry the guarantee-health
        # families, even before any simulation ran in this process.
        outage_monitor()

    def event(self, name: str, amount: int = 1) -> None:
        if amount > 0:
            self._events[name].inc(amount)

    def observe_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def observe_batch(self, size: int) -> None:
        """Record one batch dispatch and how many requests rode in it."""
        self._batch_size.observe(float(size))

    def resize(self, outcome: str, seconds: float) -> None:
        """Record one resize decision and its latency."""
        counter = self._resize_outcomes.get(outcome)
        if counter is None:
            counter = self.registry.counter(
                "repro_resize_total",
                "Elastic resize operations, by outcome.",
                outcome=outcome,
            )
            self._resize_outcomes[outcome] = counter
        counter.inc()
        self._resize_latency.observe(seconds)

    def tenant_shed(self, tenant: str) -> None:
        counter = self._tenant_sheds.get(tenant)
        if counter is None:
            counter = self.registry.counter(
                "repro_service_tenant_shed_total",
                "Over-quota sheds, by tenant.",
                tenant=tenant,
            )
            self._tenant_sheds[tenant] = counter
        counter.inc()

    def bind_tenant_depth(self, tenant: str, read) -> None:
        """Register (or refresh) the pull gauge for one tenant's queue depth."""
        gauge = self._tenant_depths.get(tenant)
        if gauge is None:
            gauge = self.registry.gauge(
                "repro_service_tenant_queue_depth",
                "Waiting requests (ready + parked) per tenant.",
                tenant=tenant,
            )
            self._tenant_depths[tenant] = gauge
        gauge.set_function(read)

    def shed_reason(self, reason: str) -> None:
        counter = self._shed.get(reason)
        if counter is None:
            counter = self.registry.counter(
                "repro_service_shed_total",
                "Requests refused with a typed load-shedding error, by reason.",
                reason=reason,
            )
            self._shed[reason] = counter
        counter.inc()

    def degradation_transition(self, to_state: str) -> None:
        counter = self._transitions.get(to_state)
        if counter is None:
            counter = self.registry.counter(
                "repro_service_degradation_transitions_total",
                "Degradation-ladder transitions, by destination state.",
                to=to_state,
            )
            self._transitions[to_state] = counter
        counter.inc()

    def bind_service(self, service) -> None:
        """Register pull gauges over one live ``AdmissionService``.

        Also binds the network guarantee-health gauges over its manager.
        Re-binding (a fresh service in the same process) replaces the
        callbacks, so the exposition always follows the newest instance.
        """
        registry = self.registry
        for queue_name, read in (
            ("ready", lambda: float(service.queue_depths()[0])),
            ("parked", lambda: float(service.queue_depths()[1])),
        ):
            registry.gauge(
                "repro_service_queue_depth",
                "Requests waiting in the admission queue.",
                queue=queue_name,
            ).set_function(read)
        registry.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the admission service instance started.",
        ).set_function(lambda: max(0.0, service.clock() - service.started_at))
        registry.gauge(
            "repro_service_workers",
            "Configured admission worker threads.",
        ).set_function(lambda: float(service.workers))
        registry.gauge(
            "repro_service_degradation_state",
            "Degradation ladder position: 0=full, 1=read_only, 2=fast_fail.",
        ).set_function(lambda: float(service.degradation_code()))
        registry.gauge(
            "repro_service_coalesce_ratio",
            "Fraction of processed requests that shared a batch leader's "
            "DP tables (0 = batching off or never coalesced).",
        ).set_function(lambda: float(service.coalesce_ratio()))
        bind_network_gauges(registry, service.manager)


class _NullService:
    """No-op facade used while instrumentation is disabled."""

    def event(self, name: str, amount: int = 1) -> None:
        pass

    def observe_latency(self, seconds: float) -> None:
        pass

    def observe_batch(self, size: int) -> None:
        pass

    def resize(self, outcome: str, seconds: float) -> None:
        pass

    def tenant_shed(self, tenant: str) -> None:
        pass

    def bind_tenant_depth(self, tenant: str, read) -> None:
        pass

    def shed_reason(self, reason: str) -> None:
        pass

    def degradation_transition(self, to_state: str) -> None:
        pass

    def bind_service(self, service) -> None:
        pass


_NULL_SERVICE = _NullService()
_SERVICE: Optional[ServiceInstruments] = None


def service_instruments():
    """The live service facade, or the shared no-op when disabled."""
    global _SERVICE
    if not _ENABLED:
        return _NULL_SERVICE
    if _SERVICE is None:
        _SERVICE = ServiceInstruments(_REGISTRY)
    return _SERVICE


def record_fault(failpoint: str) -> None:
    """Count one failpoint trigger (called by ``repro.faults``, best effort)."""
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_faults_injected_total",
        "Failpoint triggers, by failpoint name.",
        failpoint=failpoint,
    ).inc()


# ----------------------------------------------------------------------
# Experiment harness instruments
# ----------------------------------------------------------------------

#: Buckets for sweep-cell wall times: 10ms (tiny cells) .. 1h (paper scale).
_CELL_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)


class ExperimentInstruments:
    """Progress counters for the (parallel) experiment harness.

    One counter/histogram pair per experiment, resolved once and cached —
    the harness records one observation per completed sweep cell, so the
    cost is negligible next to the cell itself.  Resumed-from-checkpoint
    cells are *not* recorded: the metrics describe compute performed by
    this process, which is what a progress dashboard wants.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._completed: Dict[str, Counter] = {}
        self._seconds: Dict[str, Histogram] = {}
        # Presence-before-traffic: both families must appear in the
        # exposition even in processes that never run an experiment.
        self._for_experiment("none")

    def _for_experiment(self, experiment: str) -> Tuple[Counter, Histogram]:
        counter = self._completed.get(experiment)
        if counter is None:
            counter = self.registry.counter(
                "repro_experiment_cells_completed_total",
                "Sweep cells computed by this process, per experiment.",
                experiment=experiment,
            )
            self._completed[experiment] = counter
            self._seconds[experiment] = self.registry.histogram(
                "repro_experiment_cell_seconds",
                "Wall time to compute one sweep cell.",
                buckets=_CELL_BUCKETS,
                experiment=experiment,
            )
        return counter, self._seconds[experiment]

    def cell_completed(self, experiment: str, seconds: float) -> None:
        """Record one freshly-computed cell and its wall time."""
        counter, histogram = self._for_experiment(experiment)
        counter.inc()
        histogram.observe(seconds)


class _NullExperiment:
    """No-op facade used while instrumentation is disabled."""

    def cell_completed(self, experiment: str, seconds: float) -> None:
        pass


_NULL_EXPERIMENT = _NullExperiment()
_EXPERIMENT: Optional[ExperimentInstruments] = None


def experiment_instruments():
    """The live harness facade, or the shared no-op when disabled."""
    global _EXPERIMENT
    if not _ENABLED:
        return _NULL_EXPERIMENT
    if _EXPERIMENT is None:
        _EXPERIMENT = ExperimentInstruments(_REGISTRY)
    return _EXPERIMENT


# ----------------------------------------------------------------------
# Empirical outage monitor (Eq. 1 validation signal)
# ----------------------------------------------------------------------


class OutageMonitor:
    """Counts empirical violations of the probabilistic guarantee.

    The data plane reports, per simulated second, how many directed links
    carried stochastic load and on how many of those the *offered* demand
    exceeded capacity.  ``rate()`` — outage link-seconds over loaded
    link-seconds — is the measured counterpart of the per-link outage
    probability Eq. (1) bounds by ``epsilon``.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.outage = registry.counter(
            "repro_outage_link_seconds_total",
            "(directed link, second) pairs whose offered demand exceeded capacity.",
        )
        self.loaded = registry.counter(
            "repro_loaded_link_seconds_total",
            "(directed link, second) pairs that carried stochastic load.",
        )
        self._epsilon = registry.gauge(
            "repro_outage_epsilon",
            "Configured SLA risk factor epsilon of Eq. (1).",
        )
        rate = registry.gauge(
            "repro_outage_empirical_rate",
            "Measured outage frequency; the guarantee holds while <= epsilon.",
        )
        rate.set_function(self.rate)

    def record(self, outage_seconds: int, loaded_seconds: int) -> None:
        if loaded_seconds:
            self.loaded.inc(loaded_seconds)
        if outage_seconds:
            self.outage.inc(outage_seconds)

    def set_epsilon(self, epsilon: float) -> None:
        self._epsilon.set(epsilon)

    @property
    def epsilon(self) -> float:
        return self._epsilon.value

    def rate(self) -> float:
        loaded = self.loaded.value
        return self.outage.value / loaded if loaded else 0.0

    def within_bound(self, epsilon: Optional[float] = None) -> bool:
        """Is the measured rate within the configured (or given) epsilon?"""
        bound = self._epsilon.value if epsilon is None else epsilon
        return self.rate() <= bound


class _NullOutage:
    def record(self, outage_seconds: int, loaded_seconds: int) -> None:
        pass

    def set_epsilon(self, epsilon: float) -> None:
        pass

    def rate(self) -> float:
        return 0.0

    def within_bound(self, epsilon: Optional[float] = None) -> bool:
        return True


_NULL_OUTAGE = _NullOutage()
_OUTAGE: Optional[OutageMonitor] = None


def outage_monitor():
    """The live outage monitor, or a no-op when instrumentation is off."""
    global _OUTAGE
    if not _ENABLED:
        return _NULL_OUTAGE
    if _OUTAGE is None:
        _OUTAGE = OutageMonitor(_REGISTRY)
    return _OUTAGE


# ----------------------------------------------------------------------
# Cluster (sharded admission) instruments
# ----------------------------------------------------------------------


class ClusterInstruments:
    """Counters, latency histograms and gauges for the sharded coordinator.

    Same discipline as the other facades: counter children resolved once
    and cached, gauges are pull-based over the live coordinator, and every
    family is touched at construction so the exposition carries the
    cluster story from process start even before the first request.
    """

    #: Routing decisions (mirrors repro.cluster.coordinator ROUTE_*).
    DECISIONS = ("local", "cross_shard", "spill", "reject", "dedup")

    #: Two-phase reservation lifecycle events on the core-link ledger.
    RESERVATION_EVENTS = (
        "reserve", "reserve_denied", "commit", "abort", "expire", "mirror",
    )

    #: Coordinator paths timed end to end.
    PATHS = ("local", "cross")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._routing: Dict[str, Counter] = {
            decision: registry.counter(
                "repro_cluster_routing_total",
                "Coordinator routing decisions (local/cross_shard/spill/"
                "reject/dedup).",
                decision=decision,
            )
            for decision in self.DECISIONS
        }
        self._reservations: Dict[str, Counter] = {
            event: registry.counter(
                "repro_cluster_reservations_total",
                "Core-link ledger reservation lifecycle events of the "
                "two-phase protocol.",
                event=event,
            )
            for event in self.RESERVATION_EVENTS
        }
        self._latency: Dict[str, Histogram] = {
            path: registry.histogram(
                "repro_cluster_coordinator_latency_seconds",
                "End-to-end coordinator decision latency, by admission path.",
                buckets=DEFAULT_TIME_BUCKETS,
                path=path,
            )
            for path in self.PATHS
        }
        # Presence-before-traffic for the gauge families; bind_coordinator
        # replaces these placeholders with live per-shard/per-link children.
        registry.gauge(
            "repro_cluster_shard_free_slots",
            "Free VM slots per shard, read from the coordinator replica.",
            shard="none",
        )
        registry.gauge(
            "repro_cluster_shard_queue_depth",
            "Queued requests per shard (last collected shard summary).",
            shard="none",
        )
        registry.gauge(
            "repro_cluster_core_link_occupancy",
            "Ledger occupancy O_L per shared core link, committed + reserved.",
            link="none",
        )
        registry.gauge(
            "repro_cluster_pending_reservations",
            "Live (uncommitted, unexpired) core-link reservations.",
        )
        # Federation + distributed tracing families (presence-before-traffic).
        self._federation: Dict[str, Counter] = {
            outcome: registry.counter(
                "repro_cluster_federation_scrapes_total",
                "Per-shard registry snapshot collections by the coordinator.",
                outcome=outcome,
            )
            for outcome in ("ok", "error")
        }
        self._trace_spans: Dict[str, Counter] = {
            origin: registry.counter(
                "repro_cluster_trace_spans_total",
                "Spans folded into end-to-end cluster traces, by origin.",
                origin=origin,
            )
            for origin in ("coordinator", "shard")
        }

    # -- hot-path API ---------------------------------------------------

    def federation_scrape(self, outcome: str) -> None:
        counter = self._federation.get(outcome)
        if counter is None:
            counter = self.registry.counter(
                "repro_cluster_federation_scrapes_total",
                "Per-shard registry snapshot collections by the coordinator.",
                outcome=outcome,
            )
            self._federation[outcome] = counter
        counter.inc()

    def trace_spans(self, origin: str, count: int = 1) -> None:
        if count <= 0:
            return
        counter = self._trace_spans.get(origin)
        if counter is None:
            counter = self.registry.counter(
                "repro_cluster_trace_spans_total",
                "Spans folded into end-to-end cluster traces, by origin.",
                origin=origin,
            )
            self._trace_spans[origin] = counter
        counter.inc(count)

    def routing(self, decision: str) -> None:
        counter = self._routing.get(decision)
        if counter is None:
            counter = self.registry.counter(
                "repro_cluster_routing_total",
                "Coordinator routing decisions (local/cross_shard/spill/"
                "reject/dedup).",
                decision=decision,
            )
            self._routing[decision] = counter
        counter.inc()

    def reservation(self, event: str) -> None:
        counter = self._reservations.get(event)
        if counter is None:
            counter = self.registry.counter(
                "repro_cluster_reservations_total",
                "Core-link ledger reservation lifecycle events of the "
                "two-phase protocol.",
                event=event,
            )
            self._reservations[event] = counter
        counter.inc()

    def observe_latency(self, path: str, seconds: float) -> None:
        histogram = self._latency.get(path)
        if histogram is None:
            histogram = self.registry.histogram(
                "repro_cluster_coordinator_latency_seconds",
                "End-to-end coordinator decision latency, by admission path.",
                buckets=DEFAULT_TIME_BUCKETS,
                path=path,
            )
            self._latency[path] = histogram
        histogram.observe(seconds)

    def bind_coordinator(self, coordinator) -> None:
        """Register pull gauges over one live ``ClusterCoordinator``.

        Shard gauges read the replica (free slots, no RPC) and the last
        collected shard summaries (queue depth — refreshed by
        ``refresh_shard_stats``); core-link occupancy reads the ledger
        live, committed plus reserved, which is exactly the quantity the
        two-phase protocol admits against.
        """
        registry = self.registry

        def _free(shard_index: int):
            return lambda: float(coordinator.shard_free_slots(shard_index))

        def _queue(shard_index: int):
            return lambda: coordinator.cached_shard_stat(shard_index, "queue_depth")

        for shard in coordinator.shards:
            label = str(shard.index)
            registry.gauge(
                "repro_cluster_shard_free_slots",
                "Free VM slots per shard, read from the coordinator replica.",
                shard=label,
            ).set_function(_free(shard.index))
            registry.gauge(
                "repro_cluster_shard_queue_depth",
                "Queued requests per shard (last collected shard summary).",
                shard=label,
            ).set_function(_queue(shard.index))

        def _occupancy(link_id: int):
            return lambda: float(coordinator.ledger.occupancy_of(link_id))

        for link_id in coordinator.partition.core_link_ids:
            registry.gauge(
                "repro_cluster_core_link_occupancy",
                "Ledger occupancy O_L per shared core link, committed + reserved.",
                link=coordinator.partition.tree.node(link_id).name,
            ).set_function(_occupancy(link_id))
        registry.gauge(
            "repro_cluster_pending_reservations",
            "Live (uncommitted, unexpired) core-link reservations.",
        ).set_function(lambda: float(coordinator.ledger.pending_reservations))


class _NullCluster:
    """No-op facade used while instrumentation is disabled."""

    def federation_scrape(self, outcome: str) -> None:
        pass

    def trace_spans(self, origin: str, count: int = 1) -> None:
        pass

    def routing(self, decision: str) -> None:
        pass

    def reservation(self, event: str) -> None:
        pass

    def observe_latency(self, path: str, seconds: float) -> None:
        pass

    def bind_coordinator(self, coordinator) -> None:
        pass


_NULL_CLUSTER = _NullCluster()
_CLUSTER: Optional[ClusterInstruments] = None


def cluster_instruments():
    """The live cluster facade, or the shared no-op when disabled."""
    global _CLUSTER
    if not _ENABLED:
        return _NULL_CLUSTER
    if _CLUSTER is None:
        _CLUSTER = ClusterInstruments(_REGISTRY)
    return _CLUSTER


# ----------------------------------------------------------------------
# Network guarantee-health gauges
# ----------------------------------------------------------------------


def bind_network_gauges(registry: MetricsRegistry, manager) -> None:
    """Register pull gauges over one live ``NetworkManager``.

    Callbacks are evaluated only when a snapshot/exposition is rendered,
    so binding costs nothing between scrapes.  Re-binding (a second service
    over a new manager in the same process) replaces the callbacks.
    """
    from repro.network.snapshot import utilization_by_level  # local: no cycle

    def _row(level: int, attr: str):
        def read() -> float:
            for row in utilization_by_level(manager.state):
                if row.level == level:
                    return float(getattr(row, attr))
            return 0.0

        return read

    for row in utilization_by_level(manager.state):
        label = row.label
        registry.gauge(
            "repro_network_link_occupancy",
            "Per-level link occupancy O_L (Eq. 6) at the configured epsilon.",
            level=label,
            stat="mean",
        ).set_function(_row(row.level, "mean_occupancy"))
        registry.gauge(
            "repro_network_link_occupancy",
            "Per-level link occupancy O_L (Eq. 6) at the configured epsilon.",
            level=label,
            stat="max",
        ).set_function(_row(row.level, "max_occupancy"))
        registry.gauge(
            "repro_network_headroom_mbps",
            "Per-level stochastic headroom S_L - sum mu_i in Mbps.",
            level=label,
            stat="mean",
        ).set_function(_row(row.level, "mean_headroom_mbps"))
        registry.gauge(
            "repro_network_headroom_mbps",
            "Per-level stochastic headroom S_L - sum mu_i in Mbps.",
            level=label,
            stat="min",
        ).set_function(_row(row.level, "min_headroom_mbps"))

    registry.gauge(
        "repro_network_max_occupancy",
        "max_L O_L over the whole datacenter (the Fig. 9 statistic).",
    ).set_function(lambda: float(manager.max_occupancy()))
    registry.gauge(
        "repro_network_tenants",
        "Tenants currently holding slots and bandwidth.",
    ).set_function(lambda: float(manager.active_tenancies))
    for state_name, read in (
        ("free", lambda: float(manager.state.total_free_slots)),
        ("used", lambda: float(manager.state.used_slots)),
        ("total", lambda: float(manager.state.total_slots)),
    ):
        registry.gauge(
            "repro_network_slots",
            "VM slot accounting of the managed datacenter.",
            state=state_name,
        ).set_function(read)
