"""The metric-name contract: what the fully-instrumented system must emit.

``METRICS_SCHEMA.json`` (repo root) is the checked-in list of metric
families and their kinds.  :func:`bootstrap_registry` boots a miniature but
fully-wired system — allocator traffic, network gauges, the admission
service, the outage monitor — so every family the production daemon would
expose gets registered; :func:`diff_schema` compares that against the file.

CI fails on drift (``scripts/check_metrics_schema.py``), and a tier-1 test
enforces the same contract locally: renaming or dropping a metric is a
deliberate, reviewed act — dashboards and alerts depend on these names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

SCHEMA_FILENAME = "METRICS_SCHEMA.json"
SCHEMA_VERSION = 2


def bootstrap_registry():
    """A fresh global registry populated by a fully-wired miniature system.

    Resets the process-global registry (callers beware), then drives one
    admitted and one rejected request through an AdmissionService over the
    tiny topology, binds the network gauges, and pokes the outage monitor —
    after which the registry holds every family the daemon exposes.
    """
    # Local imports: obs is dependency-free, the bootstrap is not.
    from repro.abstractions.requests import HomogeneousSVC
    from repro.manager.network_manager import NetworkManager
    from repro.obs import instruments
    from repro.service.concurrency import AdmissionService
    from repro.topology.builder import TINY_SPEC, build_datacenter

    registry = instruments.reset_global_registry()
    instruments.configure(enabled=True)
    manager = NetworkManager(build_datacenter(TINY_SPEC), epsilon=0.05)
    service = AdmissionService(manager)
    with service:
        service.submit(HomogeneousSVC(n_vms=2, mean=50.0, std=20.0))
        service.submit(  # oversize: exercises the rejection families
            HomogeneousSVC(n_vms=manager.state.total_slots + 1, mean=50.0, std=20.0)
        )
    monitor = instruments.outage_monitor()
    monitor.set_epsilon(0.05)
    monitor.record(0, 1)
    instruments.experiment_instruments()  # registers the harness families

    # The cluster families, including the coordinator-bound pull gauges: a
    # one-shard in-memory cluster is enough to register every name the
    # sharded deployment exposes.
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.partition import ClusterPartition
    from repro.cluster.shard import LocalShard

    partition = ClusterPartition.build(TINY_SPEC, 1)
    shard = LocalShard(partition.shards[0], None, epsilon=0.05)
    coordinator = ClusterCoordinator(partition, [shard], epsilon=0.05)
    try:
        coordinator.refresh_shard_stats()
    finally:
        coordinator.stop()
        shard.close()
    return registry


def registry_families(registry) -> Dict[str, str]:
    """``{family_name: kind}`` of one registry."""
    return {family.name: family.kind for family in registry.families()}


def load_schema(path: Path) -> Dict[str, str]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('version')!r} in {path}"
        )
    return dict(payload["families"])


def dump_schema(families: Dict[str, str], path: Path) -> None:
    payload = {"version": SCHEMA_VERSION, "families": dict(sorted(families.items()))}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def diff_schema(
    expected: Dict[str, str], actual: Dict[str, str]
) -> Tuple[List[str], List[str], List[str]]:
    """``(missing, unexpected, kind_mismatches)`` between schema and registry."""
    missing = sorted(name for name in expected if name not in actual)
    unexpected = sorted(name for name in actual if name not in expected)
    mismatched = sorted(
        f"{name}: schema says {expected[name]}, registry says {actual[name]}"
        for name in expected
        if name in actual and expected[name] != actual[name]
    )
    return missing, unexpected, mismatched
