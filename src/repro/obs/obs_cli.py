"""``svc-repro obs`` — collect observability dumps from running services.

One action for now, ``dump``: gather the flight-recorder ring and recent
traces either from a **live daemon** (over the ``obs`` TCP op, which stays
reachable even in fast-fail degradation) or from **disk** (``--workdir``
collects every ``flight-*.json`` a crashed or degraded process auto-dumped
under a directory tree — the post-mortem path when nothing answers).

Examples::

    svc-repro obs dump --port 40123
    svc-repro obs dump --port 40123 --write        # also dump server-side
    svc-repro obs dump --workdir /var/lib/svc --out triage.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.logconfig import LOG_LEVELS, setup_logging
from repro.service.server import DEFAULT_HOST, DEFAULT_PORT


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="svc-repro obs",
        description=(
            "Collect flight-recorder events and recent traces from a live "
            "daemon or from on-disk flight dumps."
        ),
    )
    parser.add_argument(
        "action", choices=["dump"],
        help="dump = collect the flight ring + recent traces",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="server address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="server port")
    parser.add_argument(
        "--workdir", type=Path, default=None, metavar="DIR",
        help="collect flight-*.json dumps under this directory tree instead "
        "of querying a daemon (post-mortem mode)",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="daemon mode: also ask the server to persist its ring to disk",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the collected JSON here instead of stdout",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default="warning",
        help="stderr log verbosity (default: warning)",
    )
    return parser


def collect_disk_dumps(workdir: Path) -> Dict[str, Any]:
    """Every ``flight-*.json`` under ``workdir``, newest last per file name.

    Unreadable files are reported, not fatal — a half-written dump from a
    crashing process must not block triage of the readable ones.
    """
    dumps: List[Dict[str, Any]] = []
    errors: List[Dict[str, str]] = []
    for path in sorted(workdir.rglob("flight-*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            errors.append({"path": str(path), "error": str(exc)})
            continue
        payload["path"] = str(path)
        dumps.append(payload)
    report: Dict[str, Any] = {"source": str(workdir), "dumps": dumps}
    if errors:
        report["errors"] = errors
    return report


def obs_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``svc-repro obs``."""
    args = build_obs_parser().parse_args(argv)
    setup_logging(args.log_level)
    if args.workdir is not None:
        if not args.workdir.is_dir():
            sys.stderr.write(f"svc-repro obs: no such directory {args.workdir}\n")
            return 2
        report = collect_disk_dumps(args.workdir)
    else:
        from repro.service.client import ServiceClient

        try:
            with ServiceClient(host=args.host, port=args.port) as client:
                report = client.obs(dump=args.write)
        except (ConnectionError, OSError) as exc:
            sys.stderr.write(
                f"svc-repro obs: cannot reach {args.host}:{args.port} ({exc})\n"
            )
            return 1
    text = json.dumps(report, indent=2, default=str)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
        sys.stderr.write(f"svc-repro obs: written {args.out}\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(obs_main())
