"""Experiment-harness benchmark: sweep throughput, sequential vs pooled.

Times the cell harness (``repro.experiments.harness``) end to end — cell
enumeration, per-cell simulation, aggregation — per experiment at
``--workers 1`` and for the whole sweep at each requested worker count.
The output (``BENCH_experiments.json`` by default) records cells/sec per
experiment plus the pooled-vs-sequential wall-clock ratio, which is the
number a parallel-harness regression would move.  As a consistency signal
the pooled run's formatted tables are cross-checked against the sequential
run's — they must be byte-identical (the harness equivalence contract,
proven properly in ``tests/experiments/test_harness.py``).

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_experiments.py                  # tiny sweep
    PYTHONPATH=src python benchmarks/bench_experiments.py --workers 1,2,4
    PYTHONPATH=src python benchmarks/bench_experiments.py --experiments fig7,fig8
"""

from __future__ import annotations

import argparse
import json
from time import perf_counter
from typing import Dict, List

from _provenance import stamped

from repro.experiments.harness import run_experiments
from repro.experiments.runner import EXPERIMENT_MODULES


def bench_per_experiment(
    names: List[str], scale: str, seed: int
) -> Dict[str, Dict[str, float]]:
    """Sequential wall time and cell throughput of each experiment alone."""
    per_experiment: Dict[str, Dict[str, float]] = {}
    for name in names:
        cells = len(EXPERIMENT_MODULES[name].enumerate_cells(scale=scale, seed=seed))
        started = perf_counter()
        run_experiments([name], scale=scale, seed=seed)
        elapsed = perf_counter() - started
        per_experiment[name] = {
            "cells": cells,
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(cells / elapsed, 3) if elapsed > 0 else 0.0,
        }
        print(
            f"[bench_experiments] {name:18s} {cells:3d} cells "
            f"{elapsed:7.2f}s  {cells / elapsed:6.2f} cells/s",
            flush=True,
        )
    return per_experiment


def bench_sweep(
    names: List[str], scale: str, seed: int, workers_list: List[int]
) -> Dict[str, Dict[str, float]]:
    """Whole-sweep wall time at each worker count, with equivalence check."""
    sweep: Dict[str, Dict[str, float]] = {}
    baseline_tables = None
    total_cells = sum(
        len(EXPERIMENT_MODULES[name].enumerate_cells(scale=scale, seed=seed))
        for name in names
    )
    for workers in workers_list:
        started = perf_counter()
        results = run_experiments(names, scale=scale, seed=seed, workers=workers)
        elapsed = perf_counter() - started
        tables = "\n".join(result.format() for result in results)
        if baseline_tables is None:
            baseline_tables = tables
        elif tables != baseline_tables:
            raise AssertionError(
                f"workers={workers} produced different tables than the "
                "sequential sweep; the harness equivalence contract is broken"
            )
        sweep[str(workers)] = {
            "cells": total_cells,
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(total_cells / elapsed, 3) if elapsed > 0 else 0.0,
        }
        print(
            f"[bench_experiments] sweep workers={workers}: {total_cells} cells "
            f"in {elapsed:.2f}s ({total_cells / elapsed:.2f} cells/s)",
            flush=True,
        )
    return sweep


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="tiny",
                        help="experiment scale to sweep (default: tiny)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts for the full sweep")
    parser.add_argument("--experiments", default=None,
                        help="comma-separated registry names (default: all)")
    parser.add_argument("--output", default="BENCH_experiments.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)

    names = (
        args.experiments.split(",") if args.experiments else list(EXPERIMENT_MODULES)
    )
    unknown = [name for name in names if name not in EXPERIMENT_MODULES]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    workers_list = [int(w) for w in args.workers.split(",")]

    per_experiment = bench_per_experiment(names, args.scale, args.seed)
    sweep = bench_sweep(names, args.scale, args.seed, workers_list)

    sequential = sweep.get("1", next(iter(sweep.values())))
    fastest = min(sweep.values(), key=lambda row: row["seconds"])
    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "experiments": per_experiment,
        "sweep_by_workers": sweep,
        "best_speedup_vs_sequential": round(
            sequential["seconds"] / fastest["seconds"], 3
        )
        if fastest["seconds"] > 0
        else 0.0,
    }
    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_experiments] wrote {args.output}")


if __name__ == "__main__":
    main()
