"""Observability overhead benchmark: instrumented vs uninstrumented admission.

Runs the same ``bench_admission_path`` workload twice per repeat — once with
the observability layer live (the default) and once with
``repro.obs.configure(enabled=False)`` swapping in the no-op facades — and
compares best-of-N requests/sec.  The instrumentation contract of the obs
subsystem is **<= 5% throughput regression** on the admission fast path;
``--gate`` turns that contract into a nonzero exit code for CI.

Modes are interleaved (on, off, on, off, ...) so thermal drift and cache
warm-up bias both sides equally, and each mode's *best* run is compared —
best-of-N is the standard way to squeeze scheduler noise out of a ratio.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --scale small --num-jobs 60
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --gate   # CI: fail > 5%
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from _provenance import stamped

from bench_admission_path import run_variant

from repro.obs.instruments import configure, global_registry

GATE_PCT = 5.0


def run_overhead(
    scale_name: str = "small",
    seed: int = 0,
    load: float = 0.6,
    num_jobs: int = 60,
    repeats: int = 3,
    variant: str = "svc-dp",
) -> Dict:
    """Interleaved A/B of the admission path with instruments on vs off."""
    runs: Dict[str, List[float]] = {"enabled": [], "disabled": []}
    try:
        for repeat in range(repeats):
            for mode, flag in (("enabled", True), ("disabled", False)):
                configure(enabled=flag)
                result = run_variant(variant, scale_name, seed, load, num_jobs)
                runs[mode].append(result["requests_per_sec"])
                print(
                    f"[bench_obs_overhead] repeat {repeat + 1}/{repeats} "
                    f"{mode:8s} {result['requests_per_sec']:10.1f} req/s",
                    flush=True,
                )
    finally:
        configure(enabled=True)  # never leave the process uninstrumented

    best_on = max(runs["enabled"])
    best_off = max(runs["disabled"])
    overhead_pct = 100.0 * (best_off - best_on) / best_off if best_off > 0 else 0.0
    return {
        "benchmark": "obs_overhead",
        "variant": variant,
        "scale": scale_name,
        "seed": seed,
        "load": load,
        "num_jobs": num_jobs,
        "repeats": repeats,
        "requests_per_sec": {
            "instrumented_best": best_on,
            "uninstrumented_best": best_off,
            "instrumented_runs": runs["enabled"],
            "uninstrumented_runs": runs["disabled"],
        },
        "overhead_pct": overhead_pct,
        "gate_pct": GATE_PCT,
        "within_gate": overhead_pct <= GATE_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--load", type=float, default=0.6)
    parser.add_argument("--num-jobs", type=int, default=60)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--variant", default="svc-dp")
    parser.add_argument("--output", default="BENCH_obs_overhead.json")
    parser.add_argument(
        "--metrics-output",
        default=None,
        help="also dump the final registry snapshot as JSON (CI artifact)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"exit nonzero when overhead exceeds {GATE_PCT}%%",
    )
    args = parser.parse_args(argv)

    payload = run_overhead(
        scale_name=args.scale,
        seed=args.seed,
        load=args.load,
        num_jobs=args.num_jobs,
        repeats=args.repeats,
        variant=args.variant,
    )
    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_obs_overhead] wrote {args.output}")
    if args.metrics_output:
        with open(args.metrics_output, "w") as handle:
            json.dump(global_registry().snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[bench_obs_overhead] wrote {args.metrics_output}")
    print(
        f"[bench_obs_overhead] overhead: {payload['overhead_pct']:.2f}% "
        f"(gate {GATE_PCT}%, within: {payload['within_gate']})"
    )
    if args.gate and not payload["within_gate"]:
        print(
            f"[bench_obs_overhead] FAIL: instrumentation costs "
            f"{payload['overhead_pct']:.2f}% > {GATE_PCT}% throughput",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
