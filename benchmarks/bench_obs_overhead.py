"""Observability overhead benchmark: instrumented vs uninstrumented admission.

Runs the same ``bench_admission_path`` workload twice per repeat — once with
the observability layer live (the default) and once with
``repro.obs.configure(enabled=False)`` swapping in the no-op facades — and
compares best-of-N requests/sec.  The instrumentation contract of the obs
subsystem is **<= 5% throughput regression** on the admission fast path;
``--gate`` turns that contract into a nonzero exit code for CI.

Modes are interleaved (on, off, on, off, ...) so thermal drift and cache
warm-up bias both sides equally, and each mode's *best* run is compared —
best-of-N is the standard way to squeeze scheduler noise out of a ratio.

The same contract covers the **cluster-layer observability** added on top
(end-to-end trace propagation, flight-recorder events, metrics federation):
``run_cluster_overhead`` drives a 2-shard in-process cluster through the
coordinator twice with identical base instrumentation — once at the shipped
defaults (tracing sampled 1-in-64, plus a federated scrape every 1000
requests, still far denser than any real scrape interval) and once with
tracing sampled out and no scrapes — and applies the same <= 5% gate to the
marginal cost.  Toggling ``configure(enabled=...)`` instead would re-measure
the service instruments the single-node A/B above already gates; tracing
*every* request is a debugging posture, not the contract (sampling is the
mechanism that bounds its cost).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --scale small --num-jobs 60
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --gate   # CI: fail > 5%
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from _provenance import stamped

from bench_admission_path import run_variant

from repro.obs.instruments import configure, global_registry

GATE_PCT = 5.0


#: Effectively "never": the deterministic sampler fires on call N, 2N, ...
_SAMPLE_NEVER = 1 << 30


def _drive_cluster(
    scale_name: str,
    seed: int,
    num_requests: int,
    epsilon: float = 0.05,
    trace_sample_every: int = _SAMPLE_NEVER,
    scrape_every: int = 0,
) -> float:
    """Requests/sec of one coordinator drive over a fresh 2-shard cluster."""
    from repro.cluster.chaos import _workload_request
    from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
    from repro.cluster.partition import ClusterPartition
    from repro.cluster.shard import LocalShard
    from repro.experiments.config import SCALES
    from repro.service.errors import ServiceError

    spec = SCALES[scale_name].spec
    partition = ClusterPartition.build(spec, 2)
    rng = random.Random(seed)
    shard_slots = partition.shards[0].total_slots
    # Pre-generate the workload so RNG cost stays outside the timed window.
    requests = [_workload_request(rng, shard_slots) for _ in range(num_requests)]
    shards = [LocalShard(view, None, epsilon=epsilon) for view in partition.shards]
    coordinator = ClusterCoordinator(
        partition, shards, epsilon=epsilon, trace_sample_every=trace_sample_every
    )
    try:
        started = time.perf_counter()
        for index, request in enumerate(requests, start=1):
            try:
                coordinator.submit(request)
            except (CoordinatorError, ServiceError):
                pass  # a decision either way exercises the full path
            if scrape_every and index % scrape_every == 0:
                coordinator.cluster_metrics()
        elapsed = time.perf_counter() - started
    finally:
        coordinator.stop()
        for shard in shards:
            shard.close()
    return num_requests / elapsed if elapsed > 0 else 0.0


def run_cluster_overhead(
    scale_name: str = "tiny",
    seed: int = 0,
    num_requests: int = 400,
    repeats: int = 5,
) -> Dict:
    """Interleaved A/B of the *marginal* cluster-observability cost.

    Both sides run with the base instruments live; "enabled" additionally
    traces at the default 1-in-64 sampling and takes a federated scrape
    every 1000 requests, "disabled" samples tracing out and never scrapes.
    """
    runs: Dict[str, List[float]] = {"enabled": [], "disabled": []}
    modes = (
        ("enabled", {"trace_sample_every": 64, "scrape_every": 1000}),
        ("disabled", {}),
    )
    # Warm-up drive (untimed comparison-wise): pays the lazy imports and
    # allocator caches once so the first interleaved run is not biased.
    _drive_cluster(scale_name, seed, max(20, num_requests // 4))
    for repeat in range(repeats):
        for mode, overrides in modes:
            rate = _drive_cluster(scale_name, seed, num_requests, **overrides)
            runs[mode].append(rate)
            print(
                f"[bench_obs_overhead] cluster repeat {repeat + 1}/{repeats} "
                f"{mode:8s} {rate:10.1f} req/s",
                flush=True,
            )
    best_on = max(runs["enabled"])
    best_off = max(runs["disabled"])
    overhead_pct = 100.0 * (best_off - best_on) / best_off if best_off > 0 else 0.0
    return {
        "scale": scale_name,
        "seed": seed,
        "shards": 2,
        "num_requests": num_requests,
        "repeats": repeats,
        "traced": "1-in-64 sampling + federation scrape every 1000 vs none",
        "requests_per_sec": {
            "instrumented_best": best_on,
            "uninstrumented_best": best_off,
            "instrumented_runs": runs["enabled"],
            "uninstrumented_runs": runs["disabled"],
        },
        "overhead_pct": overhead_pct,
        "gate_pct": GATE_PCT,
        "within_gate": overhead_pct <= GATE_PCT,
    }


def run_overhead(
    scale_name: str = "small",
    seed: int = 0,
    load: float = 0.6,
    num_jobs: int = 60,
    repeats: int = 3,
    variant: str = "svc-dp",
) -> Dict:
    """Interleaved A/B of the admission path with instruments on vs off."""
    runs: Dict[str, List[float]] = {"enabled": [], "disabled": []}
    try:
        for repeat in range(repeats):
            for mode, flag in (("enabled", True), ("disabled", False)):
                configure(enabled=flag)
                result = run_variant(variant, scale_name, seed, load, num_jobs)
                runs[mode].append(result["requests_per_sec"])
                print(
                    f"[bench_obs_overhead] repeat {repeat + 1}/{repeats} "
                    f"{mode:8s} {result['requests_per_sec']:10.1f} req/s",
                    flush=True,
                )
    finally:
        configure(enabled=True)  # never leave the process uninstrumented

    best_on = max(runs["enabled"])
    best_off = max(runs["disabled"])
    overhead_pct = 100.0 * (best_off - best_on) / best_off if best_off > 0 else 0.0
    return {
        "benchmark": "obs_overhead",
        "variant": variant,
        "scale": scale_name,
        "seed": seed,
        "load": load,
        "num_jobs": num_jobs,
        "repeats": repeats,
        "requests_per_sec": {
            "instrumented_best": best_on,
            "uninstrumented_best": best_off,
            "instrumented_runs": runs["enabled"],
            "uninstrumented_runs": runs["disabled"],
        },
        "overhead_pct": overhead_pct,
        "gate_pct": GATE_PCT,
        "within_gate": overhead_pct <= GATE_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--load", type=float, default=0.6)
    parser.add_argument("--num-jobs", type=int, default=60)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--variant", default="svc-dp")
    parser.add_argument(
        "--cluster-scale",
        default="tiny",
        choices=["tiny", "small"],
        help="scale of the 2-shard cluster A/B (default: tiny)",
    )
    parser.add_argument(
        "--cluster-requests",
        type=int,
        default=400,
        help="requests per cluster drive (default: 400); 0 skips cluster mode",
    )
    parser.add_argument("--output", default="BENCH_obs_overhead.json")
    parser.add_argument(
        "--metrics-output",
        default=None,
        help="also dump the final registry snapshot as JSON (CI artifact)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"exit nonzero when overhead exceeds {GATE_PCT}%%",
    )
    args = parser.parse_args(argv)

    payload = run_overhead(
        scale_name=args.scale,
        seed=args.seed,
        load=args.load,
        num_jobs=args.num_jobs,
        repeats=args.repeats,
        variant=args.variant,
    )
    if args.cluster_requests > 0:
        payload["cluster"] = run_cluster_overhead(
            scale_name=args.cluster_scale,
            seed=args.seed,
            num_requests=args.cluster_requests,
            repeats=args.repeats,
        )
    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_obs_overhead] wrote {args.output}")
    if args.metrics_output:
        with open(args.metrics_output, "w") as handle:
            json.dump(global_registry().snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[bench_obs_overhead] wrote {args.metrics_output}")
    print(
        f"[bench_obs_overhead] overhead: {payload['overhead_pct']:.2f}% "
        f"(gate {GATE_PCT}%, within: {payload['within_gate']})"
    )
    failed = args.gate and not payload["within_gate"]
    if "cluster" in payload:
        cluster = payload["cluster"]
        print(
            f"[bench_obs_overhead] cluster overhead: "
            f"{cluster['overhead_pct']:.2f}% "
            f"(gate {GATE_PCT}%, within: {cluster['within_gate']})"
        )
        failed = failed or (args.gate and not cluster["within_gate"])
    if failed:
        print(
            f"[bench_obs_overhead] FAIL: instrumentation exceeds "
            f"{GATE_PCT}% throughput overhead",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
