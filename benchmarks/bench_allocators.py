"""Micro-benchmarks of the VM allocation algorithms.

Times a single allocation on a cold datacenter and on a pre-loaded one,
for every algorithm the paper defines.  These are the operations the network
manager performs per tenant arrival, so their latency bounds the admission
throughput of the control plane.
"""

import numpy as np
import pytest

from repro.abstractions import DeterministicVC, HeterogeneousSVC, HomogeneousSVC
from repro.allocation import (
    AdaptedTIVCAllocator,
    FirstFitAllocator,
    OktopusAllocator,
    SVCHeterogeneousAllocator,
    SVCHeterogeneousExactAllocator,
    SVCHomogeneousAllocator,
)
from repro.network import NetworkState
from repro.stochastic import Normal


def het_request(n, seed=0):
    rng = np.random.default_rng(seed)
    return HeterogeneousSVC(
        n_vms=n,
        demands=tuple(
            Normal(float(rng.choice([100, 200, 300])), float(rng.uniform(10, 80)))
            for _ in range(n)
        ),
    )


def preloaded_state(tree, count=6):
    """A datacenter already hosting a handful of SVC tenants."""
    state = NetworkState(tree, epsilon=0.05)
    allocator = SVCHomogeneousAllocator()
    for request_id in range(count):
        allocation = allocator.allocate(
            state, HomogeneousSVC(n_vms=4, mean=150.0, std=50.0), request_id + 1
        )
        if allocation is not None:
            state.commit(allocation)
    return state


class TestHomogeneousAllocators:
    def test_svc_dp_cold(self, benchmark, small_tree):
        request = HomogeneousSVC(n_vms=24, mean=200.0, std=80.0)

        def allocate():
            return SVCHomogeneousAllocator().allocate(
                NetworkState(small_tree, epsilon=0.05), request, 1
            )

        assert benchmark(allocate) is not None

    def test_svc_dp_loaded(self, benchmark, small_tree):
        state = preloaded_state(small_tree, count=10)
        request = HomogeneousSVC(n_vms=24, mean=200.0, std=80.0)
        allocator = SVCHomogeneousAllocator()
        assert benchmark(lambda: allocator.allocate(state, request, 99)) is not None

    def test_adapted_tivc_cold(self, benchmark, small_tree):
        request = HomogeneousSVC(n_vms=24, mean=200.0, std=80.0)

        def allocate():
            return AdaptedTIVCAllocator().allocate(
                NetworkState(small_tree, epsilon=0.05), request, 1
            )

        assert benchmark(allocate) is not None

    def test_oktopus_cold(self, benchmark, small_tree):
        request = DeterministicVC(n_vms=24, bandwidth=200.0)

        def allocate():
            return OktopusAllocator().allocate(
                NetworkState(small_tree, epsilon=0.05), request, 1
            )

        assert benchmark(allocate) is not None


class TestHeterogeneousAllocators:
    def test_substring_heuristic(self, benchmark, tiny_tree):
        request = het_request(12)

        def allocate():
            return SVCHeterogeneousAllocator().allocate(
                NetworkState(tiny_tree, epsilon=0.05), request, 1
            )

        assert benchmark(allocate) is not None

    def test_first_fit(self, benchmark, tiny_tree):
        request = het_request(12)

        def allocate():
            return FirstFitAllocator().allocate(
                NetworkState(tiny_tree, epsilon=0.05), request, 1
            )

        assert benchmark(allocate) is not None

    def test_exact_dp_small_n(self, benchmark, tiny_tree):
        request = het_request(7)

        def allocate():
            return SVCHeterogeneousExactAllocator().allocate(
                NetworkState(tiny_tree, epsilon=0.05), request, 1
            )

        assert benchmark(allocate) is not None
