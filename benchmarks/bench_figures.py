"""One end-to-end benchmark per table/figure of the evaluation (Section VI).

Each benchmark regenerates its figure at tiny scale and sanity-checks the
output shape.  The timed quantity is the full pipeline: workload generation,
admission control, VM allocation, flow-level simulation, and metric
aggregation.
"""

import pytest

from repro.experiments import (
    fig5_batch_oversub,
    fig6_runtime_vs_deviation,
    fig7_rejection_vs_load,
    fig8_concurrency,
    fig9_occupancy_cdf,
    fig10_svc_vs_tivc_rejection,
    het_vs_first_fit,
)


def _run_once(benchmark, func):
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


class TestFigureBenchmarks:
    def test_fig5_batch_completion_vs_oversubscription(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: fig5_batch_oversub.run(
                scale="tiny", seed=0, oversubscriptions=(1.0, 2.0, 3.0, 4.0)
            ),
        )
        table = result.tables[0]
        assert len(table.rows) == 4
        assert all(value > 0 for row in table.rows for value in row[1:])

    def test_fig6_runtime_vs_deviation(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: fig6_runtime_vs_deviation.run(
                scale="tiny", seed=0, deviations=(0.1, 0.5, 0.9)
            ),
        )
        assert len(result.tables[0].rows) == 4

    def test_fig7_rejection_vs_load(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: fig7_rejection_vs_load.run(
                scale="tiny", seed=0, loads=(0.2, 0.4, 0.6, 0.8)
            ),
        )
        table = result.tables[0]
        assert all(0.0 <= value <= 100.0 for row in table.rows for value in row[1:])

    def test_fig8_concurrency_timeseries(self, benchmark):
        result = _run_once(benchmark, lambda: fig8_concurrency.run(scale="tiny", seed=0))
        assert len(result.tables) == 2

    def test_fig9_occupancy_cdf(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: fig9_occupancy_cdf.run(scale="tiny", seed=0, loads=(0.2, 0.6)),
        )
        assert len(result.tables[0].rows) == 4  # 2 algorithms x 2 loads

    def test_fig10_svc_vs_tivc_rejection(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: fig10_svc_vs_tivc_rejection.run(
                scale="tiny", seed=0, loads=(0.2, 0.4, 0.6, 0.8)
            ),
        )
        assert len(result.tables[0].rows) == 2

    def test_het_vs_first_fit(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: het_vs_first_fit.run(scale="tiny", seed=0, loads=(0.2, 0.6)),
        )
        assert len(result.tables) == 2
