"""Benchmark-suite configuration.

Every figure of the paper's evaluation has one benchmark that regenerates it
end to end at tiny scale (so ``pytest benchmarks/ --benchmark-only`` finishes
in minutes); the micro-benchmarks time the core algorithms in isolation.
Full-scale reproductions run through the CLI: ``svc-repro <figN> --scale paper``.
"""

import numpy as np
import pytest

from repro.topology import TINY_SPEC, SMALL_SPEC, build_datacenter


@pytest.fixture(scope="session")
def tiny_tree():
    return build_datacenter(TINY_SPEC)


@pytest.fixture(scope="session")
def small_tree():
    return build_datacenter(SMALL_SPEC)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
