"""Admission fast-path benchmark: the service's per-request throughput ceiling.

Drives a Fig. 7-style Poisson arrival stream (jobs arrive, hold their
allocation for their compute time, then depart) through the admission path of
each allocator variant and records wall-clock allocate latency per request:

* ``svc-dp``       — Algorithm 1, fast path (pruned/batched/vectorized DP)
* ``svc-dp-seed``  — Algorithm 1, seed reference implementation
* ``tivc``         — the adapted-TIVC baseline (fast path)
* ``svc-het``      — the heterogeneous substring heuristic, fast path
* ``svc-het-seed`` — the heterogeneous heuristic, reference implementation

The output (``BENCH_admission.json`` by default) is the perf trajectory
subsequent PRs defend: requests/sec and p50/p99 allocate latency per variant,
plus the fast-vs-seed speedups.  Placement equivalence of each fast path vs
its reference is *proven* by the test suite
(``tests/allocation/test_fast_path_equivalence.py`` and
``tests/allocation/test_het_fast_equivalence.py``); the benchmark
cross-checks the admit/reject tallies as a cheap consistency signal
(``svc_dp_decisions_match_seed`` / ``svc_het_decisions_match_seed``, both
gated in CI).

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_admission_path.py            # paper tree
    PYTHONPATH=src python benchmarks/bench_admission_path.py --scale small --num-jobs 60
"""

from __future__ import annotations

import argparse
import heapq
import json
import time
from typing import Dict, List, Optional

import numpy as np

from _provenance import stamped

from repro.allocation.svc_het_heuristic import SVCHeterogeneousAllocator
from repro.allocation.svc_homogeneous import (
    AdaptedTIVCAllocator,
    SVCHomogeneousAllocator,
)
from repro.experiments.config import scale_by_name
from repro.manager.network_manager import NetworkManager
from repro.simulation.workload import (
    assign_poisson_arrivals,
    generate_jobs,
    make_request,
)
from repro.topology.builder import build_datacenter

DEFAULT_VARIANTS = ("svc-dp", "svc-dp-seed", "tivc", "svc-het", "svc-het-seed")


def _make_allocator(variant: str):
    if variant == "svc-dp":
        return SVCHomogeneousAllocator()
    if variant == "svc-dp-seed":
        return SVCHomogeneousAllocator(fast=False)
    if variant == "tivc":
        return AdaptedTIVCAllocator()
    if variant == "svc-het":
        return SVCHeterogeneousAllocator()
    if variant == "svc-het-seed":
        return SVCHeterogeneousAllocator(fast=False)
    raise ValueError(f"unknown variant {variant!r}; choose from {DEFAULT_VARIANTS}")


def _arrival_stream(scale_name: str, seed: int, load: float, num_jobs: Optional[int],
                    heterogeneous: bool):
    """Fig. 7-style workload: Poisson arrivals at the target datacenter load."""
    scale = scale_by_name(scale_name)
    overrides: Dict = {"heterogeneous": heterogeneous}
    if num_jobs is not None:
        overrides["num_jobs"] = num_jobs
    config = scale.workload(**overrides)
    specs = generate_jobs(config, np.random.default_rng(seed))
    tree = build_datacenter(scale.spec)
    specs = assign_poisson_arrivals(
        specs,
        load=load,
        total_slots=tree.total_slots,
        mean_job_size=config.mean_job_size,
        mean_compute_time=config.mean_compute_time,
        rng=np.random.default_rng(seed + 1),
    )
    return tree, specs


def run_variant(variant: str, scale_name: str, seed: int, load: float,
                num_jobs: Optional[int], epsilon: float = 0.05) -> Dict:
    """Admit the arrival stream through one allocator, timing every decision.

    Jobs hold their allocation for their compute time and are released before
    later arrivals are admitted, so the allocator sees a realistically
    churning link state rather than a monotonically filling one.
    """
    heterogeneous = variant in ("svc-het", "svc-het-seed")
    tree, specs = _arrival_stream(scale_name, seed, load, num_jobs, heterogeneous)
    manager = NetworkManager(tree, epsilon=epsilon, allocator=_make_allocator(variant))
    rate_cap = tree.min_machine_uplink_capacity

    latencies: List[float] = []
    departures: List = []  # (departure_time, request_id)
    admitted = rejected = 0
    for spec in specs:
        now = spec.submit_time
        while departures and departures[0][0] <= now:
            _, request_id = heapq.heappop(departures)
            tenancy = manager.get_tenancy(request_id)
            if tenancy is not None:
                manager.release(tenancy)
        request = make_request(spec, "svc", rate_cap=rate_cap)
        start = time.perf_counter()
        tenancy = manager.request(request)
        latencies.append(time.perf_counter() - start)
        if tenancy is None:
            rejected += 1
        else:
            admitted += 1
            heapq.heappush(departures, (now + spec.compute_time, tenancy.request_id))

    samples = np.asarray(latencies)
    total = float(samples.sum())
    return {
        "variant": variant,
        "requests": len(specs),
        "admitted": admitted,
        "rejected": rejected,
        "total_allocate_s": total,
        "requests_per_sec": len(specs) / total if total > 0 else float("inf"),
        "p50_allocate_ms": float(np.percentile(samples, 50) * 1000.0),
        "p99_allocate_ms": float(np.percentile(samples, 99) * 1000.0),
        "mean_allocate_ms": float(samples.mean() * 1000.0),
    }


def run_benchmark(scale_name: str = "paper", seed: int = 0, load: float = 0.6,
                  num_jobs: Optional[int] = None,
                  variants=DEFAULT_VARIANTS) -> Dict:
    scale = scale_by_name(scale_name)
    tree = build_datacenter(scale.spec)
    results = {}
    for variant in variants:
        print(f"[bench_admission_path] running {variant} ...", flush=True)
        results[variant] = run_variant(variant, scale_name, seed, load, num_jobs)
        row = results[variant]
        print(
            f"  {variant:12s} {row['requests_per_sec']:10.1f} req/s   "
            f"p50 {row['p50_allocate_ms']:.2f} ms   p99 {row['p99_allocate_ms']:.2f} ms",
            flush=True,
        )
    payload = {
        "benchmark": "admission_path",
        "scale": scale_name,
        "machines": len(tree.machine_ids),
        "slots": tree.total_slots,
        "load": load,
        "seed": seed,
        "epsilon": 0.05,
        "variants": results,
    }
    for prefix, fast_name, seed_name in (
        ("svc_dp", "svc-dp", "svc-dp-seed"),
        ("svc_het", "svc-het", "svc-het-seed"),
    ):
        fast = results.get(fast_name)
        slow = results.get(seed_name)
        if fast and slow:
            payload[f"{prefix}_speedup_vs_seed"] = (
                fast["requests_per_sec"] / slow["requests_per_sec"]
            )
            payload[f"{prefix}_decisions_match_seed"] = (
                fast["admitted"] == slow["admitted"]
                and fast["rejected"] == slow["rejected"]
            )
    return payload


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="paper", choices=["tiny", "small", "paper"],
                        help="datacenter scale (default: the paper's 1,000-machine tree)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--load", type=float, default=0.6,
                        help="target datacenter load of the Poisson stream")
    parser.add_argument("--num-jobs", type=int, default=None,
                        help="override the scale's job count (smoke runs)")
    parser.add_argument("--variants", nargs="+", default=list(DEFAULT_VARIANTS),
                        help=f"variants to run (default: {' '.join(DEFAULT_VARIANTS)})")
    parser.add_argument("--output", default="BENCH_admission.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)

    payload = run_benchmark(
        scale_name=args.scale,
        seed=args.seed,
        load=args.load,
        num_jobs=args.num_jobs,
        variants=tuple(args.variants),
    )
    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_admission_path] wrote {args.output}")
    for prefix, label in (("svc_dp", "svc-dp"), ("svc_het", "svc-het")):
        if f"{prefix}_speedup_vs_seed" in payload:
            print(
                f"[bench_admission_path] {label} speedup vs seed: "
                f"{payload[f'{prefix}_speedup_vs_seed']:.2f}x "
                f"(decisions match: {payload[f'{prefix}_decisions_match_seed']})"
            )


if __name__ == "__main__":
    main()
