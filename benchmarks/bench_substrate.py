"""Micro-benchmarks of the substrates under the allocators and simulator."""

import numpy as np
import pytest

from repro.abstractions import HeterogeneousSVC, HomogeneousSVC
from repro.allocation.demand_model import (
    SegmentDemandTable,
    homogeneous_split_moments,
)
from repro.simulation.maxmin import build_incidence, max_min_fair_rates
from repro.stochastic import Normal, min_of_normals
from repro.topology import PAPER_SPEC, build_datacenter


class TestStochasticPrimitives:
    def test_min_of_normals_scalar(self, benchmark):
        a, b = Normal(300.0, 90.0), Normal(500.0, 150.0)
        result = benchmark(lambda: min_of_normals(a, b))
        assert result.mean < 300.0

    def test_split_moments_paper_sized_request(self, benchmark):
        # The per-request precomputation of Algorithm 1 for N = 200.
        request = HomogeneousSVC(n_vms=200, mean=300.0, std=120.0)
        mu, _var = benchmark(lambda: homogeneous_split_moments(request))
        assert len(mu) == 201

    def test_segment_table_n50(self, benchmark, rng):
        request = HeterogeneousSVC(
            n_vms=50,
            demands=tuple(
                Normal(float(rng.uniform(50, 500)), float(rng.uniform(5, 100)))
                for _ in range(50)
            ),
        )
        table = benchmark(lambda: SegmentDemandTable(request))
        assert table.demand_mean.shape == (51, 51)


class TestDataPlanePrimitives:
    def _random_flows(self, num_flows, num_links, rng):
        demands = rng.uniform(10.0, 500.0, size=num_flows)
        paths = [
            rng.choice(num_links, size=rng.integers(1, 7), replace=False).tolist()
            for _ in range(num_flows)
        ]
        capacities = rng.uniform(500.0, 5000.0, size=num_links)
        return demands, paths, capacities

    def test_maxmin_thousand_flows(self, benchmark, rng):
        demands, paths, capacities = self._random_flows(1000, 300, rng)
        link_of_entry, flow_ptr = build_incidence(paths, 300)

        rates = benchmark(
            lambda: max_min_fair_rates(demands, link_of_entry, flow_ptr, capacities)
        )
        assert (rates <= demands + 1e-6).all()

    def test_build_paper_scale_topology(self, benchmark):
        tree = benchmark(lambda: build_datacenter(PAPER_SPEC))
        assert tree.total_slots == 4000
