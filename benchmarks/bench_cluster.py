"""Cluster throughput: does sharded admission actually scale?

Builds the tentpole configuration — a 10,000-machine three-level tree
(``DatacenterSpec(machines_per_rack=20, racks_per_pod=10, pods=50)``) —
partitions it into K shards (process-backed, so allocator work runs
GIL-free), and pushes a fixed request stream through the coordinator from
K concurrent submitters.  Reported per shard count: requests/sec, routing
mix, and the post-run core-link occupancy (the Eq. (4) validity check —
every admitted configuration must keep ``O_L < 1``).

The headline number is ``speedup_4x_vs_1x``: the tentpole targets >= 3x.
CI runs the ``--smoke`` configuration (small tree, few requests,
non-gating); the full tree is a workstation run::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import threading
from time import perf_counter
from typing import Any, Dict, List

from _provenance import stamped

from repro.abstractions import HomogeneousSVC
from repro.cluster.coordinator import ClusterCoordinator, CoordinatorError
from repro.cluster.partition import ClusterPartition
from repro.cluster.worker import ProcessShard, wait_for_shards
from repro.service.errors import ServiceError
from repro.topology.builder import DatacenterSpec

#: The tentpole tree: 50 pods x 10 racks x 20 machines = 10,000 machines.
PAPER_10K_SPEC = DatacenterSpec(machines_per_rack=20, racks_per_pod=10, pods=50)
SMOKE_SPEC = DatacenterSpec(machines_per_rack=10, racks_per_pod=4, pods=8)


def _requests(seed: int, count: int) -> List[HomogeneousSVC]:
    """A fixed stream of mostly-small tenants (identical for every K)."""
    rng = random.Random(seed)
    return [
        HomogeneousSVC(
            n_vms=rng.randint(2, 12),
            mean=rng.uniform(30.0, 90.0),
            std=rng.uniform(5.0, 25.0),
        )
        for _ in range(count)
    ]


def run_shard_count(
    spec: DatacenterSpec,
    shards: int,
    requests: List[HomogeneousSVC],
    submitters: int,
) -> Dict[str, Any]:
    """One cluster build + drive; returns the measured row."""
    partition = ClusterPartition.build(spec, shards)
    handles = [ProcessShard(view, None) for view in partition.shards]
    wait_for_shards(handles)
    coordinator = ClusterCoordinator(partition, handles)
    counters = {"admitted": 0, "rejected": 0, "errors": 0}
    routes: Dict[str, int] = {}
    tally = threading.Lock()
    cursor = iter(requests)

    def submitter() -> None:
        while True:
            with tally:
                request = next(cursor, None)
            if request is None:
                return
            try:
                decision = coordinator.submit(request)
            except (CoordinatorError, ServiceError):
                with tally:
                    counters["errors"] += 1
                continue
            with tally:
                route = decision.get("route", "unknown")
                routes[route] = routes.get(route, 0) + 1
                counters["admitted" if decision["outcome"] == "admitted"
                         else "rejected"] += 1

    try:
        threads = [
            threading.Thread(target=submitter, daemon=True)
            for _ in range(submitters)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = perf_counter() - started
        stats = coordinator.stats()
        occupancies = list(stats["core_occupancy"].values())
        return {
            "shards": shards,
            "submitters": submitters,
            "requests": len(requests),
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(len(requests) / elapsed, 2) if elapsed else 0.0,
            "admitted": counters["admitted"],
            "rejected": counters["rejected"],
            "transport_errors": counters["errors"],
            "routes": routes,
            "max_core_occupancy": round(max(occupancies), 6) if occupancies else 0.0,
            "replica_max_occupancy": round(stats["replica_max_occupancy"], 6),
            "occupancy_valid": (max(occupancies) if occupancies else 0.0) < 1.0
            and stats["replica_max_occupancy"] < 1.0,
        }
    finally:
        coordinator.stop()
        for handle in handles:
            handle.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=400,
                        help="tenant requests per shard count (default: 400)")
    parser.add_argument("--shard-counts", default="1,2,4",
                        help="comma-separated shard counts (default: 1,2,4)")
    parser.add_argument("--smoke", action="store_true",
                        help="small tree + short stream (CI smoke configuration)")
    parser.add_argument("--output", default="BENCH_cluster.json")
    args = parser.parse_args(argv)

    spec = SMOKE_SPEC if args.smoke else PAPER_10K_SPEC
    count = min(args.requests, 60) if args.smoke else args.requests
    shard_counts = [int(k) for k in args.shard_counts.split(",")]
    requests = _requests(args.seed, count)

    rows = {}
    for shards in shard_counts:
        row = run_shard_count(spec, shards, requests, submitters=max(2, shards))
        rows[str(shards)] = row
        print(
            f"[bench_cluster] K={shards}: {row['requests_per_sec']:8.1f} req/s  "
            f"({row['admitted']} admitted, routes {row['routes']}, "
            f"O_L max {row['max_core_occupancy']:.3f})"
        )

    payload: Dict[str, Any] = {
        "spec": {
            "machines_per_rack": spec.machines_per_rack,
            "racks_per_pod": spec.racks_per_pod,
            "pods": spec.pods,
            "machines": spec.machines_per_rack * spec.racks_per_pod * spec.pods,
        },
        "smoke": bool(args.smoke),
        "seed": args.seed,
        "by_shards": rows,
    }
    if "1" in rows and "4" in rows and rows["1"]["requests_per_sec"] > 0:
        payload["speedup_4x_vs_1x"] = round(
            rows["4"]["requests_per_sec"] / rows["1"]["requests_per_sec"], 3
        )
        print(f"[bench_cluster] speedup 4 shards vs 1: {payload['speedup_4x_vs_1x']}x")
    payload["occupancy_valid"] = all(row["occupancy_valid"] for row in rows.values())

    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_cluster] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
