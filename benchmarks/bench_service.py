"""Throughput benchmarks of the admission service layer.

What sustained admission rate does the service front-end add on top of the
bare allocator?  Three tiers isolate the overheads: the naked manager
(allocator + commit only), the threaded service without durability (lock +
queue + ticket machinery), and the journaled service (plus one WAL append
per decision).

Besides the closed-loop pytest-benchmark tiers, the module doubles as a
standalone **open-loop** benchmark for the admission batcher: requests
arrive without waiting on completions (the queue saturates), and the run
records the sustained drain rate and p99 sojourn latency at batch sizes
{1, 8, 32}.  This is the number the async front door's coalescing defends —
shared DP tables only pay when same-shape requests meet in the queue.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_service.py                     # paper tree
    PYTHONPATH=src python benchmarks/bench_service.py --scale tiny --num-requests 24
"""

from __future__ import annotations

import argparse
import itertools
import json
import time
from typing import Dict, Optional, Sequence

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.service import AdmissionService, DurabilityStore

OPS_PER_ROUND = 50

DEFAULT_BATCH_SIZES = (1, 8, 32)


def _requests():
    for index in itertools.count():
        if index % 2:
            yield HomogeneousSVC(n_vms=2 + index % 3, mean=80.0, std=30.0)
        else:
            yield DeterministicVC(n_vms=2, bandwidth=60.0)


def _admit_release_round(submit, release):
    """Admit OPS_PER_ROUND mixed requests, releasing to stay in steady state."""
    source = _requests()
    active = []
    admitted = 0
    for _ in range(OPS_PER_ROUND):
        request_id = submit(next(source))
        if request_id is not None:
            admitted += 1
            active.append(request_id)
        if len(active) > 8:
            release(active.pop(0))
    for request_id in active:
        release(request_id)
    return admitted


class TestAdmissionThroughput:
    def test_bare_manager_baseline(self, benchmark, tiny_tree):
        manager = NetworkManager(tiny_tree)

        def submit(request):
            tenancy = manager.request(request)
            return None if tenancy is None else tenancy.request_id

        def release(request_id):
            manager.release(manager.tenancy(request_id))

        admitted = benchmark(lambda: _admit_release_round(submit, release))
        assert admitted > 0

    def test_service_no_journal(self, benchmark, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), workers=2) as service:

            def submit(request):
                return service.submit(request, wait=True).request_id

            admitted = benchmark(
                lambda: _admit_release_round(submit, service.release)
            )
        assert admitted > 0

    def test_service_with_journal(self, benchmark, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "journal", snapshot_every=500)
        manager = NetworkManager(tiny_tree)
        with AdmissionService(manager, store=store, workers=2) as service:

            def submit(request):
                return service.submit(request, wait=True).request_id

            admitted = benchmark(
                lambda: _admit_release_round(submit, service.release)
            )
        store.close()
        assert admitted > 0


# ----------------------------------------------------------------------
# Open-loop arrival mode (standalone): batch coalescing under saturation
# ----------------------------------------------------------------------


def run_open_loop_once(
    tree,
    batch_max: int,
    num_requests: int,
    n_vms: int,
    mean: float,
    std: float,
    linger_s: float = 0.0,
    wait_timeout_s: float = 600.0,
) -> Dict:
    """Saturate a single-worker service with same-shape SVC requests.

    Open loop: every request is submitted ``wait=False`` up front, so the
    arrival process never throttles on decisions and the queue depth is what
    gives the batcher something to coalesce.  Sustained req/s counts from the
    first submit to the last resolved ticket; the latency percentiles are the
    service's own submit-to-decision sojourn times.
    """
    from repro.service.codec import network_state_to_dict

    manager = NetworkManager(tree)
    service = AdmissionService(
        manager,
        workers=1,
        batch_max=batch_max,
        batch_linger_s=linger_s,
        max_queue_depth=None,
    )
    service.start()
    try:
        request = HomogeneousSVC(n_vms=n_vms, mean=mean, std=std)
        start = time.perf_counter()
        tickets = [
            service.submit(request, wait=False) for _ in range(num_requests)
        ]
        for ticket in tickets:
            if not ticket.wait(timeout=wait_timeout_s):
                raise RuntimeError(
                    f"ticket did not resolve within {wait_timeout_s}s "
                    f"(batch_max={batch_max})"
                )
        elapsed = time.perf_counter() - start
        stats = service.stats()
        fingerprint = json.dumps(
            network_state_to_dict(manager.state), sort_keys=True
        )
    finally:
        service.stop()
    latency = stats["admission_latency"]
    return {
        "batch_max": batch_max,
        "requests": num_requests,
        "admitted": stats["counters"]["admitted"],
        "rejected": stats["counters"]["rejected"],
        "elapsed_s": elapsed,
        "sustained_req_per_sec": num_requests / elapsed,
        "p50_sojourn_ms": latency["p50_ms"],
        "p99_sojourn_ms": latency["p99_ms"],
        "coalesce_ratio": stats["batching"]["coalesce_ratio"],
        "batches_dispatched": stats["batching"]["batches"],
        "_state_fingerprint": fingerprint,
    }


def run_open_loop(
    scale_name: str = "paper",
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    num_requests: int = 160,
    n_vms: int = 16,
    mean: float = 30.0,
    std: float = 8.0,
    linger_ms: float = 0.0,
) -> Dict:
    """The open-loop sweep over batch sizes, plus the cross-checks.

    Decision identity of batched vs unbatched admission is *proven* by
    ``tests/service/test_batching.py``; here the final network-state
    fingerprint of every batch size is compared against batch 1 as a cheap
    consistency signal (``decisions_match_batch1``, gated in CI).
    """
    from repro.experiments.config import scale_by_name
    from repro.topology.builder import build_datacenter

    scale = scale_by_name(scale_name)
    tree = build_datacenter(scale.spec)
    results: Dict[str, Dict] = {}
    for batch_max in batch_sizes:
        print(f"[bench_service] open loop, batch_max={batch_max} ...", flush=True)
        row = run_open_loop_once(
            tree,
            batch_max=batch_max,
            num_requests=num_requests,
            n_vms=n_vms,
            mean=mean,
            std=std,
            linger_s=linger_ms / 1000.0,
        )
        results[str(batch_max)] = row
        print(
            f"  batch_max={batch_max:3d} {row['sustained_req_per_sec']:8.1f} req/s   "
            f"p99 {row['p99_sojourn_ms']:.2f} ms   "
            f"coalesce {row['coalesce_ratio']:.3f}",
            flush=True,
        )

    baseline = results.get("1")
    baseline_fp = baseline["_state_fingerprint"] if baseline is not None else None
    for row in results.values():
        fingerprint = row.pop("_state_fingerprint", None)
        if baseline_fp is not None:
            row["decisions_match_batch1"] = fingerprint == baseline_fp

    payload = {
        "benchmark": "service_open_loop",
        "scale": scale_name,
        "machines": len(tree.machine_ids),
        "slots": tree.total_slots,
        "requests": num_requests,
        "n_vms": n_vms,
        "mean": mean,
        "std": std,
        "batch_linger_ms": linger_ms,
        "workers": 1,
        "batch_sizes": results,
    }
    if baseline is not None and "32" in results:
        payload["batch32_speedup_vs_1"] = (
            results["32"]["sustained_req_per_sec"]
            / baseline["sustained_req_per_sec"]
        )
    return payload


def main(argv: Optional[Sequence[str]] = None) -> None:
    from _provenance import stamped

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="paper", choices=["tiny", "small", "paper"],
                        help="datacenter scale (default: the paper's 1,000-machine tree)")
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=list(DEFAULT_BATCH_SIZES),
                        help="batcher sizes to sweep (default: 1 8 32)")
    parser.add_argument("--num-requests", type=int, default=160,
                        help="requests per run (default 160: ~64%% of the paper tree)")
    parser.add_argument("--n-vms", type=int, default=16,
                        help="VMs per request; >=16 exercises the vertex DP")
    parser.add_argument("--mean", type=float, default=30.0)
    parser.add_argument("--std", type=float, default=8.0)
    parser.add_argument("--batch-linger-ms", type=float, default=0.0,
                        help="batcher linger window (matches the serve flag)")
    parser.add_argument("--output", default="BENCH_service.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)

    payload = run_open_loop(
        scale_name=args.scale,
        batch_sizes=tuple(args.batch_sizes),
        num_requests=args.num_requests,
        n_vms=args.n_vms,
        mean=args.mean,
        std=args.std,
        linger_ms=args.batch_linger_ms,
    )
    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_service] wrote {args.output}")
    if "batch32_speedup_vs_1" in payload:
        match = all(
            row.get("decisions_match_batch1", False)
            for row in payload["batch_sizes"].values()
        )
        print(
            f"[bench_service] batch 32 speedup vs 1: "
            f"{payload['batch32_speedup_vs_1']:.2f}x (decisions match: {match})"
        )


if __name__ == "__main__":
    main()
