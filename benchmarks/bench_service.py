"""Throughput benchmarks of the admission service layer.

What sustained admission rate does the service front-end add on top of the
bare allocator?  Three tiers isolate the overheads: the naked manager
(allocator + commit only), the threaded service without durability (lock +
queue + ticket machinery), and the journaled service (plus one WAL append
per decision).
"""

import itertools

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.service import AdmissionService, DurabilityStore

OPS_PER_ROUND = 50


def _requests():
    for index in itertools.count():
        if index % 2:
            yield HomogeneousSVC(n_vms=2 + index % 3, mean=80.0, std=30.0)
        else:
            yield DeterministicVC(n_vms=2, bandwidth=60.0)


def _admit_release_round(submit, release):
    """Admit OPS_PER_ROUND mixed requests, releasing to stay in steady state."""
    source = _requests()
    active = []
    admitted = 0
    for _ in range(OPS_PER_ROUND):
        request_id = submit(next(source))
        if request_id is not None:
            admitted += 1
            active.append(request_id)
        if len(active) > 8:
            release(active.pop(0))
    for request_id in active:
        release(request_id)
    return admitted


class TestAdmissionThroughput:
    def test_bare_manager_baseline(self, benchmark, tiny_tree):
        manager = NetworkManager(tiny_tree)

        def submit(request):
            tenancy = manager.request(request)
            return None if tenancy is None else tenancy.request_id

        def release(request_id):
            manager.release(manager.tenancy(request_id))

        admitted = benchmark(lambda: _admit_release_round(submit, release))
        assert admitted > 0

    def test_service_no_journal(self, benchmark, tiny_tree):
        with AdmissionService(NetworkManager(tiny_tree), workers=2) as service:

            def submit(request):
                return service.submit(request, wait=True).request_id

            admitted = benchmark(
                lambda: _admit_release_round(submit, service.release)
            )
        assert admitted > 0

    def test_service_with_journal(self, benchmark, tiny_tree, tmp_path):
        store = DurabilityStore(tmp_path / "journal", snapshot_every=500)
        manager = NetworkManager(tiny_tree)
        with AdmissionService(manager, store=store, workers=2) as service:

            def submit(request):
                return service.submit(request, wait=True).request_id

            admitted = benchmark(
                lambda: _admit_release_round(submit, service.release)
            )
        store.close()
        assert admitted > 0
