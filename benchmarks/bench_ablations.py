"""Benchmarks for the ablation studies (DESIGN.md design-choice probes)."""

import pytest

from repro.experiments import ablation_epsilon, ablation_locality


def _run_once(benchmark, func):
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


class TestAblationBenchmarks:
    def test_epsilon_knob(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: ablation_epsilon.run(scale="tiny", seed=0, epsilons=(0.02, 0.05, 0.2)),
        )
        table = result.tables[0]
        assert len(table.rows) == 3
        rejections = [row[1] for row in table.rows]
        assert all(a >= b - 1e-9 for a, b in zip(rejections, rejections[1:]))

    def test_locality_bias(self, benchmark):
        result = _run_once(
            benchmark,
            lambda: ablation_locality.run(scale="tiny", seed=0, loads=(0.6,)),
        )
        assert len(result.tables[0].rows) == 2
