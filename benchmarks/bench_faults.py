"""Admission latency under injected journal faults vs a clean journal.

How much does the fault-handling machinery cost when faults actually fire?
Two variants of the same journaled admit/release workload:

* **clean** — no failpoints armed: the baseline price of one WAL append
  per decision (plus the now always-present failpoint hooks, which is the
  interesting regression to watch);
* **faulty** — ``journal.write`` armed with a 1% error probability: every
  hit rolls an admission back, degrades the service to read-only, and the
  workload rides the retry/probe/recover cycle like a real client would.

Reported per variant: decided requests/sec plus p50/p99 decision latency.
The delta is *expected* to be visible (each injected fault costs a
rollback plus at least one probe interval of shed time); the benchmark
exists to keep that cost bounded and tracked, not to gate it at zero.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_faults.py --operations 300
    PYTHONPATH=src python benchmarks/bench_faults.py --fault-rate 0.05
"""

from __future__ import annotations

import argparse
import itertools
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from _provenance import stamped

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.experiments.config import SCALES
from repro.faults.failpoints import FAILPOINTS, FP_JOURNAL_WRITE, MODE_ERROR
from repro.manager import NetworkManager
from repro.service import AdmissionService, DurabilityStore, ServiceError
from repro.service.degrade import DegradationLadder
from repro.topology import build_datacenter


def _requests():
    for index in itertools.count():
        if index % 2:
            yield HomogeneousSVC(n_vms=2 + index % 3, mean=80.0, std=30.0)
        else:
            yield DeterministicVC(n_vms=2, bandwidth=60.0)


def run_variant(
    fault_rate: float,
    scale_name: str = "tiny",
    operations: int = 300,
    seed: int = 0,
) -> Dict:
    """One journaled workload; returns latency/throughput statistics."""
    tree = build_datacenter(SCALES[scale_name].spec)
    FAILPOINTS.clear()
    FAILPOINTS.seed(seed)
    if fault_rate > 0.0:
        FAILPOINTS.arm(FP_JOURNAL_WRITE, MODE_ERROR, probability=fault_rate)
    latencies: List[float] = []
    decided = shed = faults_seen = 0
    with tempfile.TemporaryDirectory(prefix="bench-faults-") as tmp:
        store = DurabilityStore(Path(tmp), snapshot_every=200)
        service = AdmissionService(
            NetworkManager(tree),
            store=store,
            workers=1,
            degradation=DegradationLadder(probe_interval=0.005),
        ).start()
        source = _requests()
        active: List[int] = []
        started = time.perf_counter()
        try:
            for _ in range(operations):
                request = next(source)
                t0 = time.perf_counter()
                try:
                    ticket = service.submit(request, wait=True, wait_timeout=10.0)
                except ServiceError:
                    # Shed while degraded: wait out one probe cycle and
                    # move on — exactly what a backoff-respecting client does.
                    shed += 1
                    time.sleep(0.01)
                    continue
                latencies.append(time.perf_counter() - t0)
                decided += 1
                if ticket.outcome == "admitted":
                    active.append(ticket.request_id)
                elif ticket.outcome == "error":
                    faults_seen += 1
                if len(active) > 8:
                    try:
                        service.release(active.pop(0))
                    except ServiceError:
                        shed += 1
                        time.sleep(0.01)
            elapsed = time.perf_counter() - started
        finally:
            service.stop()
            store.close()
            FAILPOINTS.clear()
    ordered = sorted(latencies)

    def pct(p: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, round(p * (len(ordered) - 1)))]

    return {
        "fault_rate": fault_rate,
        "operations": operations,
        "decided": decided,
        "shed": shed,
        "rolled_back": faults_seen,
        "requests_per_sec": decided / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": 1000.0 * pct(0.50),
            "p99": 1000.0 * pct(0.99),
            "mean": 1000.0 * statistics.fmean(latencies) if latencies else 0.0,
        },
    }


def run_bench(
    scale_name: str = "tiny",
    operations: int = 300,
    fault_rate: float = 0.01,
    seed: int = 0,
) -> Dict:
    clean = run_variant(0.0, scale_name, operations, seed)
    faulty = run_variant(fault_rate, scale_name, operations, seed)
    base = clean["requests_per_sec"]
    return {
        "benchmark": "faults",
        "scale": scale_name,
        "seed": seed,
        "clean": clean,
        "faulty": faulty,
        "throughput_drop_pct": (
            100.0 * (base - faulty["requests_per_sec"]) / base if base > 0 else 0.0
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument("--operations", type=int, default=300)
    parser.add_argument("--fault-rate", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    payload = run_bench(
        scale_name=args.scale,
        operations=args.operations,
        fault_rate=args.fault_rate,
        seed=args.seed,
    )
    with open(args.output, "w") as handle:
        json.dump(stamped(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench_faults] wrote {args.output}")
    for name in ("clean", "faulty"):
        row = payload[name]
        print(
            f"[bench_faults] {name:6s} {row['requests_per_sec']:8.1f} req/s  "
            f"p50 {row['latency_ms']['p50']:.2f}ms  p99 {row['latency_ms']['p99']:.2f}ms  "
            f"(shed {row['shed']}, rolled back {row['rolled_back']})"
        )
    print(f"[bench_faults] throughput drop: {payload['throughput_drop_pct']:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
