"""Provenance stamping for benchmark artifacts.

Every ``BENCH_*.json`` this suite writes carries a ``provenance`` block —
git commit, host, python version, UTC timestamp — so a checked-in or
CI-uploaded artifact can always be traced back to the tree and machine
that produced it.  Numbers without provenance age into folklore.

Usage (all bench scripts)::

    from _provenance import stamped

    payload = stamped({...results...})
    json.dump(payload, handle, indent=2, sort_keys=True)
"""

from __future__ import annotations

import platform
import socket
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*args: str) -> str:
    """One git query against the repo this file lives in; '' on any failure
    (benchmarks must run from exported tarballs too)."""
    try:
        return subprocess.run(
            ["git", *args],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return ""


def provenance() -> Dict[str, Any]:
    """The stamp itself: where, when, and from what source these numbers came."""
    commit = _git("rev-parse", "HEAD")
    dirty = bool(_git("status", "--porcelain")) if commit else False
    return {
        "git_commit": commit or None,
        "git_dirty": dirty,
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
    }


def stamped(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The payload with a ``provenance`` block added (in place, returned)."""
    payload["provenance"] = provenance()
    return payload
