"""Regenerate the tiny-scale golden tables pinned by the test suite.

``tests/experiments/goldens/<name>.txt`` holds the formatted tables of
``run_all(scale="tiny", seed=0)`` — one file per experiment, rendered
exactly as the CLI prints them.  ``tests/experiments/test_goldens.py``
asserts the harness still reproduces these bit for bit, which pins down
the whole deterministic pipeline: seed derivations, workload generation,
the simulators, cell aggregation, and table formatting.

Changing any of those on purpose (e.g. a seed-derivation fix) is a
reviewed act: rerun this script and commit the diff.

Usage (repo root)::

    PYTHONPATH=src python scripts/regen_goldens.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENT_MODULES, run_all

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "experiments" / "goldens"


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    results = run_all(scale="tiny", seed=0)
    for name, result in zip(EXPERIMENT_MODULES, results):
        path = GOLDEN_DIR / f"{name}.txt"
        path.write_text(result.format() + "\n", encoding="utf-8")
        print(f"[regen_goldens] wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
