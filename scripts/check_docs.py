#!/usr/bin/env python
"""Doc-drift gate: the documentation must keep working as the code moves.

Three checks over README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md:

1. **Fenced ``python`` blocks are executed** (``PYTHONPATH=src``, each block
   its own interpreter).  Blocks that talk to a daemon via ``ServiceClient``
   get one: the checker boots ``svc-repro serve --scale small --port 0`` once
   and rewrites the documented port to the live one before running the block.
2. **Fenced ``bash`` blocks are linted against the real parsers**: every
   ``svc-repro``/``python -m repro.cli`` line is checked token by token —
   the subcommand must exist, every ``--flag`` must be a real option of the
   parser that would receive it, and choice-restricted values must be valid.
3. **Referenced paths must exist**: any ``examples/…``, ``benchmarks/…``,
   ``scripts/…`` or ``docs/…`` file named in a bash block or inline code span
   has to be present in the repo.

Opt out per block by placing ``<!-- check-docs: skip -->`` on the line above
the opening fence (used for illustrative/pseudo-code fragments).

Run from the repo root (CI does, gating)::

    python scripts/check_docs.py
    python scripts/check_docs.py --no-exec README.md   # parser/path lint only
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
SKIP_MARKER = "<!-- check-docs: skip -->"
BLOCK_TIMEOUT_S = 180
PATH_PATTERN = re.compile(
    r"\b((?:examples|benchmarks|scripts|docs|tests)/[\w][\w./-]*\.(?:py|md|json))\b"
)

sys.path.insert(0, str(SRC))


class Block(NamedTuple):
    path: Path
    lang: str
    first_line: int  # line number of the opening fence, 1-based
    code: str
    skipped: bool


def iter_blocks(path: Path) -> Iterator[Block]:
    lines = path.read_text().splitlines()
    fence: Optional[Tuple[str, int]] = None
    body: List[str] = []
    previous_meaningful = ""
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if fence is None:
            if stripped.startswith("```") and stripped != "```":
                fence = (stripped[3:].strip(), number)
                body = []
            elif stripped.startswith("```"):
                fence = ("", number)
                body = []
            elif stripped:
                previous_meaningful = stripped
        else:
            if stripped == "```":
                lang, start = fence
                yield Block(
                    path=path,
                    lang=lang,
                    first_line=start,
                    code="\n".join(body),
                    skipped=previous_meaningful == SKIP_MARKER,
                )
                fence = None
                previous_meaningful = ""
            else:
                body.append(line)


class Failure(NamedTuple):
    where: str
    message: str


# ---------------------------------------------------------------------------
# Check 2: svc-repro command lines against the real argparse parsers.
# ---------------------------------------------------------------------------


def _parsers():
    from repro.cli import build_parser
    from repro.cluster.cluster_cli import build_cluster_parser
    from repro.faults.chaos_cli import build_chaos_parser
    from repro.obs.obs_cli import build_obs_parser
    from repro.service.server import build_serve_parser
    from repro.service.top import build_top_parser

    return {
        "serve": build_serve_parser(),
        "top": build_top_parser(),
        "chaos": build_chaos_parser(),
        "cluster": build_cluster_parser(),
        "obs": build_obs_parser(),
        None: build_parser(),  # the experiment front-end
    }


def _cli_tokens(line: str) -> Optional[List[str]]:
    """The argv a documented command line would hand to ``repro.cli.main``."""
    code = line.split("#", 1)[0].strip()
    if not code:
        return None
    try:
        tokens = shlex.split(code)
    except ValueError:
        return None
    tokens = [t for t in tokens if "=" not in t or not t.partition("=")[0].isupper()]
    if not tokens:
        return None
    if tokens[0] == "svc-repro":
        return tokens[1:]
    if tokens[0].endswith("python") and tokens[1:3] == ["-m", "repro.cli"]:
        return tokens[3:]
    return None


def lint_cli_line(parsers, line: str, where: str) -> List[Failure]:
    argv = _cli_tokens(line)
    if argv is None or not argv:
        return []
    failures: List[Failure] = []
    parser = parsers.get(argv[0])
    if parser is not None:
        argv = argv[1:]
    else:
        parser = parsers[None]
        experiment_action = next(
            a for a in parser._actions if a.dest == "experiment"
        )
        if argv[0].startswith("-") or argv[0] not in experiment_action.choices:
            failures.append(
                Failure(where, f"unknown subcommand/experiment {argv[0]!r}")
            )
            return failures
        argv = argv[1:]
    options = parser._option_string_actions
    index = 0
    while index < len(argv):
        token = argv[index]
        index += 1
        if not token.startswith("--"):
            continue
        flag, _, inline_value = token.partition("=")
        action = options.get(flag)
        if action is None:
            failures.append(
                Failure(where, f"{flag!r} is not a flag of this command")
            )
            continue
        if action.nargs == 0:
            continue
        value = inline_value
        if not value and index < len(argv) and not argv[index].startswith("-"):
            value = argv[index]
            index += 1
        if action.choices and value and value not in [str(c) for c in action.choices]:
            failures.append(
                Failure(where, f"{flag} {value!r} not in {sorted(map(str, action.choices))}")
            )
    return failures


# ---------------------------------------------------------------------------
# Check 1: execute python blocks (booting a daemon when a block needs one).
# ---------------------------------------------------------------------------


class DaemonHandle:
    """Lazily-started ``svc-repro serve`` a documented block can talk to."""

    def __init__(self) -> None:
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None

    def ensure(self) -> int:
        if self.port is not None:
            return self.port
        env = dict(os.environ, PYTHONPATH=str(SRC))
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--scale", "small", "--port", "0", "--log-level", "error",
            ],
            cwd=ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        assert self.process.stdout is not None
        ready = self.process.stdout.readline()
        self.port = int(json.loads(ready)["port"])
        return self.port

    def close(self) -> None:
        if self.process is not None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()


def run_python_block(block: Block, daemon: DaemonHandle, where: str) -> List[Failure]:
    code = block.code
    if "ServiceClient" in code:
        try:
            port = daemon.ensure()
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            return [Failure(where, f"could not boot a daemon for this block: {exc}")]
        code = re.sub(r"port=\d+", f"port={port}", code)
    env = dict(os.environ, PYTHONPATH=str(SRC))
    try:
        proc = subprocess.run(
            [sys.executable, "-"],
            input=code,
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=BLOCK_TIMEOUT_S,
        )
    except subprocess.TimeoutExpired:
        return [Failure(where, f"python block timed out after {BLOCK_TIMEOUT_S}s")]
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.strip().splitlines()[-4:])
        return [Failure(where, f"python block failed (exit {proc.returncode}):\n{tail}")]
    return []


# ---------------------------------------------------------------------------
# Check 3: referenced repo paths exist.
# ---------------------------------------------------------------------------


def lint_paths(text: str, where: str) -> List[Failure]:
    failures = []
    for match in PATH_PATTERN.finditer(text):
        if not (ROOT / match.group(1)).exists():
            failures.append(Failure(where, f"referenced path {match.group(1)!r} does not exist"))
    return failures


def default_docs() -> List[Path]:
    docs = [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md"]
    docs.extend(sorted((ROOT / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="docs to check (default: all)")
    parser.add_argument(
        "--no-exec", action="store_true",
        help="skip executing python blocks (parser/path lint only)",
    )
    args = parser.parse_args(argv)

    docs = [Path(f).resolve() for f in args.files] if args.files else default_docs()
    parsers = _parsers()
    daemon = DaemonHandle()
    failures: List[Failure] = []
    checked_blocks = executed = 0
    try:
        for doc in docs:
            for block in iter_blocks(doc):
                where = f"{doc.relative_to(ROOT)}:{block.first_line}"
                if block.skipped:
                    continue
                checked_blocks += 1
                failures.extend(lint_paths(block.code, where))
                if block.lang in ("bash", "sh", "console"):
                    for offset, line in enumerate(block.code.splitlines()):
                        failures.extend(
                            lint_cli_line(parsers, line, f"{doc.relative_to(ROOT)}:{block.first_line + 1 + offset}")
                        )
                elif block.lang == "python" and not args.no_exec:
                    executed += 1
                    failures.extend(run_python_block(block, daemon, where))
    finally:
        daemon.close()

    for failure in failures:
        print(f"check_docs: {failure.where}: {failure.message}", file=sys.stderr)
    print(
        f"check_docs: {len(docs)} file(s), {checked_blocks} block(s) checked, "
        f"{executed} python block(s) executed, {len(failures)} problem(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
