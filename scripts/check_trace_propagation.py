#!/usr/bin/env python
"""E2E smoke: cluster-wide observability over a real 2-shard cluster.

Boots two spawned shard *worker processes* (``ProcessShard``), submits one
cross-shard admission through the coordinator with ``trace_sample_every=1``,
and asserts the PR-8 acceptance surface end to end:

1. **One trace, one trace id** — the coordinator's ring holds a finished
   trace whose local spans cover routing, reserve and commit, and whose
   remote spans were produced by *both* shard child processes (their own
   pids, relayed over the RPC channel) under the same global trace id.
2. **Federated snapshot** — ``cluster_metrics()`` merges both child
   registries: per-shard Eq. 6 occupancy gauges and outage counters appear
   under ``shard="0"`` / ``shard="1"`` labels.
3. **Flight recorder** — the coordinator ring replays the admission as a
   ``cluster_decision`` wide event, both shard rings answer the ``obs`` op,
   and a triggered dump lands on disk where ``svc-repro obs dump
   --workdir`` collects it.

Run from the repo root (CI does, gating)::

    PYTHONPATH=src python scripts/check_trace_propagation.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def check(failures: List[str], ok: bool, what: str) -> None:
    print(f"  {'ok' if ok else 'FAIL'}: {what}")
    if not ok:
        failures.append(what)


def series_for(metrics, family: str, **labels) -> List[dict]:
    rows = metrics.get(family, {}).get("series", [])
    return [
        row
        for row in rows
        if all(row.get("labels", {}).get(k) == v for k, v in labels.items())
    ]


def main() -> int:
    from repro.abstractions import HomogeneousSVC
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.partition import ClusterPartition
    from repro.cluster.worker import ProcessShard, wait_for_shards
    from repro.obs.flightrec import configure_flight_recorder, flight_recorder
    from repro.obs.obs_cli import collect_disk_dumps
    from repro.topology.builder import TINY_SPEC

    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp:
        workdir = Path(tmp)
        configure_flight_recorder(dump_dir=str(workdir / "coordinator"))
        partition = ClusterPartition.build(TINY_SPEC, 2)
        print("[trace-smoke] spawning 2 shard workers ...")
        shards = [
            ProcessShard(view, workdir / f"shard{view.shard_index}")
            for view in partition.shards
        ]
        wait_for_shards(shards)
        coordinator = ClusterCoordinator(
            partition,
            shards,
            directory=workdir / "coordinator",
            trace_sample_every=1,
        )
        try:
            child_pids = {shard._process.pid for shard in shards}
            # 40 VMs > the 32 slots of one TINY shard: must span both.
            decision = coordinator.submit(
                HomogeneousSVC(n_vms=40, mean=8.0, std=2.0)
            )
            print("[trace-smoke] cross-shard admission")
            check(failures, decision["outcome"] == "admitted", "request admitted")
            check(
                failures,
                decision["route"] in ("cross_shard", "spill"),
                f"routed across shards (route={decision['route']})",
            )
            gid = decision["request_id"]
            fragments = coordinator.fragments_of(gid)
            check(
                failures,
                sorted(fragments) == [0, 1],
                f"fragments on both shards ({sorted(fragments)})",
            )

            # -- 1. one end-to-end trace under a single trace id ---------
            print("[trace-smoke] end-to-end trace")
            traces = [
                trace
                for trace in coordinator.recent_traces(limit=16)
                if trace["meta"].get("gid") == gid
            ]
            check(failures, len(traces) == 1, "exactly one trace for the admission")
            if traces:
                trace = traces[0]
                trace_id = trace["meta"].get("trace_id_global", "")
                check(
                    failures,
                    trace_id.startswith(f"{os.getpid()}-"),
                    f"coordinator-scoped global trace id ({trace_id})",
                )
                span_names = {span["name"] for span in trace["spans"]}
                for needed in ("route", "reserve", "commit"):
                    check(failures, needed in span_names, f"local span {needed!r}")
                remote = trace["remote_spans"]
                check(failures, len(remote) > 0, f"remote spans present ({len(remote)})")
                remote_pids = {span.get("pid") for span in remote}
                check(
                    failures,
                    remote_pids == child_pids,
                    f"remote spans from both shard workers (pids {sorted(remote_pids)})",
                )
                remote_shards = {span.get("shard") for span in remote}
                check(
                    failures,
                    remote_shards == {0, 1},
                    f"remote spans labeled per shard ({sorted(remote_shards)})",
                )

            # -- 2. federated metrics snapshot ---------------------------
            print("[trace-smoke] metrics federation")
            federated = coordinator.cluster_metrics()
            metrics = federated["metrics"]
            for shard_label in ("0", "1"):
                occupancy = series_for(
                    metrics, "repro_network_max_occupancy", shard=shard_label
                )
                check(
                    failures,
                    bool(occupancy) and occupancy[0]["value"] > 0.0,
                    f"Eq. 6 occupancy gauge for shard {shard_label} "
                    f"({occupancy[0]['value'] if occupancy else 'missing'})",
                )
                outage = series_for(
                    metrics, "repro_outage_link_seconds_total", shard=shard_label
                )
                check(
                    failures,
                    bool(outage),
                    f"outage counter federated for shard {shard_label}",
                )
            scrapes = series_for(
                metrics,
                "repro_cluster_federation_scrapes_total",
                shard="coordinator",
                outcome="ok",
            )
            check(
                failures,
                bool(scrapes) and scrapes[0]["value"] >= 2,
                "federation scrape counter counts both shards",
            )

            # -- 3. flight recorder ring + on-disk dump ------------------
            print("[trace-smoke] flight recorder")
            obs = coordinator.collect_obs_dumps()
            decisions = [
                event
                for event in obs["coordinator"]["flight"]
                if event["kind"] == "cluster_decision" and event.get("gid") == gid
            ]
            check(
                failures,
                len(decisions) == 1 and decisions[0]["outcome"] == "admitted",
                "coordinator flight ring replays the admission decision",
            )
            shard_pids = {
                dump.get("pid") for dump in obs["shards"] if "error" not in dump
            }
            check(
                failures,
                shard_pids == child_pids,
                "both shard workers answered the obs collection",
            )
            dump_path = flight_recorder().maybe_dump("smoke")
            check(
                failures,
                dump_path is not None and Path(dump_path).is_file(),
                f"flight dump written ({dump_path})",
            )
            collected = collect_disk_dumps(workdir)
            check(
                failures,
                any(
                    d.get("trigger") == "smoke" and d.get("events")
                    for d in collected["dumps"]
                ),
                f"obs dump collection finds the flight file "
                f"({len(collected['dumps'])} dump(s))",
            )
        finally:
            coordinator.stop()
            for shard in shards:
                shard.close()

    if failures:
        print(f"[trace-smoke] FAILED: {len(failures)} check(s)", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("[trace-smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
