"""CI gate: the registry's metric families must match METRICS_SCHEMA.json.

Boots the miniature fully-wired system (see ``repro.obs.schema``), collects
every metric family it registers, and diffs names and kinds against the
checked-in contract.  Dashboards and alerts key on these names, so adding,
renaming or re-typing a metric must be a reviewed change to the schema file
— run with ``--update`` to rewrite it deliberately.

Usage (repo root)::

    PYTHONPATH=src python scripts/check_metrics_schema.py
    PYTHONPATH=src python scripts/check_metrics_schema.py --update
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.schema import (
    SCHEMA_FILENAME,
    bootstrap_registry,
    diff_schema,
    dump_schema,
    load_schema,
    registry_families,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--schema",
        default=None,
        help=f"path to the schema file (default: <repo root>/{SCHEMA_FILENAME})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the schema file from the current registry instead of checking",
    )
    args = parser.parse_args(argv)

    schema_path = (
        Path(args.schema)
        if args.schema
        else Path(__file__).resolve().parent.parent / SCHEMA_FILENAME
    )
    actual = registry_families(bootstrap_registry())

    if args.update:
        dump_schema(actual, schema_path)
        print(f"[check_metrics_schema] wrote {schema_path} ({len(actual)} families)")
        return 0

    if not schema_path.exists():
        print(
            f"[check_metrics_schema] {schema_path} does not exist; "
            "run with --update to create it",
            file=sys.stderr,
        )
        return 1
    expected = load_schema(schema_path)
    missing, unexpected, mismatched = diff_schema(expected, actual)
    if not (missing or unexpected or mismatched):
        print(
            f"[check_metrics_schema] OK: {len(actual)} families match {schema_path.name}"
        )
        return 0
    for name in missing:
        print(f"[check_metrics_schema] MISSING  {name} (in schema, not emitted)",
              file=sys.stderr)
    for name in unexpected:
        print(f"[check_metrics_schema] NEW      {name} (emitted, not in schema)",
              file=sys.stderr)
    for line in mismatched:
        print(f"[check_metrics_schema] KIND     {line}", file=sys.stderr)
    print(
        "[check_metrics_schema] metric names drifted from the checked-in schema; "
        "if intentional, rerun with --update and commit the result",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
