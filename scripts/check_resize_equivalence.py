"""CI gate: an in-place resize commit is bit-identical to release+re-admit.

:meth:`NetworkManager.resize` mutates link state incrementally (per-link
Eq. 6 occupancy deltas of the surviving placement).  The equivalent
from-first-principles path is: release the tenant completely, then adopt
the post-resize allocation onto the same placement.  Both must land on the
**same serialized network state, byte for byte** — any drift means the
delta math disagrees with the commit/release math the rest of the system
is built on.

The drill: admit a seeded tenant population on manager A and mirror every
allocation onto manager B via ``adopt``.  Then churn random grow/shrink
resizes through A; after each accepted resize, B releases that tenant and
re-adopts A's post-resize allocation.  After every step,
``network_state_to_dict(A) == network_state_to_dict(B)`` must hold
exactly.  Exit code 0 only if every comparison matches.

Usage (repo root)::

    PYTHONPATH=src python scripts/check_resize_equivalence.py --scale tiny
    PYTHONPATH=src python scripts/check_resize_equivalence.py --scale small --rounds 400
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import batch_workload, resolve_scale, simulation_rng
from repro.manager.network_manager import (
    RESIZE_IN_PLACE,
    RESIZE_REPLACED,
    NetworkManager,
)
from repro.service.codec import network_state_to_dict
from repro.simulation.workload import make_request
from repro.topology.builder import build_datacenter


def log(message: str) -> None:
    print(f"[check_resize_equivalence] {message}", flush=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tenants", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=200)
    args = parser.parse_args()

    scale = resolve_scale(args.scale)
    tree = build_datacenter(scale.spec)
    live = NetworkManager(tree, epsilon=0.05)
    mirror = NetworkManager(tree, epsilon=0.05)
    rate_cap = tree.min_machine_uplink_capacity

    ids = []
    for spec in batch_workload(scale, args.seed):
        if len(ids) >= args.tenants:
            break
        tenancy = live.request(make_request(spec, "svc", rate_cap=rate_cap))
        if tenancy is not None:
            ids.append(tenancy.request_id)
            mirror.adopt(tenancy.allocation)
    if not ids:
        log("no tenants admitted; nothing to check")
        return 1
    if network_state_to_dict(live.state) != network_state_to_dict(mirror.state):
        log("FAIL: adopt-mirrored baseline already diverges")
        return 1

    rng = simulation_rng(args.seed)
    outcomes = {RESIZE_IN_PLACE: 0, RESIZE_REPLACED: 0, "rejected": 0}
    for round_index in range(args.rounds):
        request_id = ids[int(rng.integers(len(ids)))]
        current_n = live.tenancy(request_id).n_vms
        delta = int(rng.integers(1, 4))
        new_n = current_n + delta if rng.random() < 0.5 else max(1, current_n - delta)
        if new_n == current_n:
            continue
        result = live.resize(request_id, new_n=new_n)
        outcomes[result.outcome] += 1
        if result.accepted:
            # The reference path: full release, re-admit onto the same
            # placement the in-place commit produced.
            mirror.release(mirror.tenancy(request_id))
            mirror.adopt(live.tenancy(request_id).allocation)
        if network_state_to_dict(live.state) != network_state_to_dict(mirror.state):
            log(
                f"FAIL at round {round_index}: in-place state diverged from "
                f"release+re-admit after resizing tenant {request_id} "
                f"{current_n}->{new_n} ({result.outcome})"
            )
            return 1
    if outcomes[RESIZE_IN_PLACE] == 0:
        log(f"FAIL: churn produced no in-place commits to compare {outcomes}")
        return 1
    log(
        f"OK: {sum(outcomes.values())} resizes over {len(ids)} tenants "
        f"(in_place={outcomes[RESIZE_IN_PLACE]} "
        f"replaced={outcomes[RESIZE_REPLACED]} rejected={outcomes['rejected']}); "
        "every commit bit-identical to release+re-admit"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
