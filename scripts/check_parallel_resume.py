"""CI gate: a killed parallel sweep resumes without losing or redoing work.

The drill, end to end:

1. run the full sweep sequentially (``--workers 1``) and keep its tables as
   the reference output;
2. start the same sweep with ``--workers N`` into a run directory, wait
   until a few cells are checkpointed, and ``SIGKILL`` the process mid-sweep
   (no cleanup handlers — exactly what a preempted CI runner or OOM kill
   looks like);
3. snapshot the surviving checkpoints, then resume with ``--resume``;
4. assert the resumed sweep's aggregated tables are byte-identical to the
   sequential reference, and that every checkpoint that survived the kill
   was reused verbatim (same bytes), not recomputed.

Exit code 0 only if all of that holds.  The run directory is left in place
so CI can upload it as an artifact.

Usage (repo root)::

    PYTHONPATH=src python scripts/check_parallel_resume.py --scale tiny
    PYTHONPATH=src python scripts/check_parallel_resume.py --scale small --workers 2
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def log(message: str) -> None:
    print(f"[check_parallel_resume] {message}", flush=True)


def cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_cli(args, timeout: float) -> str:
    """Run ``svc-repro`` to completion; returns stdout (the tables)."""
    command = [sys.executable, "-m", "repro.cli", *args]
    proc = subprocess.run(
        command, env=cli_env(), cwd=REPO_ROOT, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    if proc.returncode != 0:
        log(proc.stderr[-2000:])
        raise SystemExit(f"command {' '.join(args)} exited {proc.returncode}")
    return proc.stdout


def checkpoints(run_dir: Path) -> dict:
    """``{relative path: bytes}`` of every checkpointed cell in the run dir."""
    cells = run_dir / "cells"
    if not cells.is_dir():
        return {}
    return {
        str(path.relative_to(run_dir)): path.read_bytes()
        for path in sorted(cells.rglob("*.json"))
    }


def kill_mid_sweep(
    args, run_dir: Path, min_cells: int, timeout: float
) -> dict:
    """Start the sweep, SIGKILL it once >= min_cells are on disk.

    Returns the surviving checkpoints.  If the sweep finishes before the
    threshold is seen (tiny scales are fast), that is fine too — the resume
    then simply has nothing to recompute, which the equivalence check still
    validates.
    """
    command = [sys.executable, "-m", "repro.cli", *args]
    proc = subprocess.Popen(
        command, env=cli_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + timeout
    try:
        while proc.poll() is None and time.time() < deadline:
            if len(checkpoints(run_dir)) >= min_cells:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                log(f"killed sweep pid {proc.pid} mid-run")
                break
            time.sleep(0.2)
        else:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
                raise SystemExit(
                    f"sweep produced < {min_cells} checkpoints in {timeout:.0f}s"
                )
            log("sweep finished before the kill threshold (fast scale); "
                "resume will be a pure replay")
    finally:
        if proc.poll() is None:
            proc.kill()
    survivors = checkpoints(run_dir)
    log(f"{len(survivors)} checkpoint(s) survived the kill")
    return survivors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--run-dir", default="resume-check-run")
    parser.add_argument("--min-cells", type=int, default=5,
                        help="checkpoints required on disk before the kill")
    parser.add_argument("--timeout", type=float, default=3600.0,
                        help="per-phase wall-clock budget in seconds")
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if run_dir.exists() and any(run_dir.iterdir()):
        raise SystemExit(f"run dir {run_dir} is not empty; refusing to reuse it")

    base = ["all", "--scale", args.scale, "--seed", str(args.seed),
            "--log-level", "warning"]

    log(f"phase 1: sequential reference sweep (scale={args.scale})")
    reference = run_cli(base + ["--workers", "1"], timeout=args.timeout)

    log(f"phase 2: parallel sweep with --workers {args.workers}, killed mid-run")
    sweep_args = base + [
        "--workers", str(args.workers), "--run-dir", str(run_dir),
    ]
    survivors = kill_mid_sweep(
        sweep_args, run_dir, min_cells=args.min_cells, timeout=args.timeout
    )

    log("phase 3: resume")
    resumed = run_cli(sweep_args + ["--resume"], timeout=args.timeout)

    failures = []
    if resumed != reference:
        failures.append(
            "resumed tables differ from the sequential reference sweep"
        )
    after = checkpoints(run_dir)
    rewritten = [
        path for path, content in survivors.items()
        if after.get(path) != content
    ]
    if rewritten:
        failures.append(
            f"{len(rewritten)} surviving checkpoint(s) were rewritten on "
            f"resume (finished cells were re-run): {rewritten[:5]}"
        )
    if len(after) < len(survivors):
        failures.append("checkpoints disappeared during resume")

    if failures:
        for failure in failures:
            log(f"FAIL: {failure}")
        return 1
    log(
        f"OK: resumed sweep matches the sequential reference "
        f"({len(survivors)} cells reused, {len(after) - len(survivors)} "
        f"computed after resume)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
