#!/usr/bin/env python
"""The worked example of Fig. 3: why occupancy optimization matters.

Two machines A and B with 5 VM slots each hang off one switch; both links
have capacity 50.  A deterministic virtual cluster ``<N=6, B=10>`` arrives.
The paper contrasts the valid allocations 2+4 (reserved bandwidth
``10 * min(2,4) = 20`` per link) and 3+3 (30 per link); the adapted-TIVC
search "makes no distinction between them".  Algorithm 1 finds the true
optimum — 1+5, reserving only ``10 * min(1,5) = 10``.

Run: ``python examples/fig3_worked_example.py``
"""

from repro import (
    AdaptedTIVCAllocator,
    DeterministicVC,
    NetworkManager,
    SVCHomogeneousAllocator,
    build_two_machine_example,
)


def describe(tree, label, allocation) -> None:
    counts = {
        tree.node(machine_id).name: count
        for machine_id, count in allocation.machine_counts.items()
    }
    print(
        f"  {label:18s} placement={counts}  "
        f"max occupancy ratio={allocation.max_occupancy:.3f}"
    )


def main() -> None:
    tree = build_two_machine_example(slots_per_machine=5, link_capacity=50.0)
    request = DeterministicVC(n_vms=6, bandwidth=10.0)
    print(f"topology: two machines x 5 slots, link capacity 50")
    print(f"request:  <N={request.n_vms}, B={request.bandwidth}> (Fig. 3)\n")

    print("candidate splits and the bandwidth they reserve on each link:")
    for a in range(1, 6):
        b = 6 - a
        if b > 5:
            continue
        reserved = 10.0 * min(a, b)
        print(f"  {a}+{b}: reserved {reserved:4.0f}/50 per link -> occupancy {reserved/50:.2f}")

    print("\nallocators:")
    for label, allocator in (
        ("Algorithm 1 (SVC)", SVCHomogeneousAllocator()),
        ("adapted TIVC", AdaptedTIVCAllocator()),
    ):
        manager = NetworkManager(tree, allocator=allocator)
        tenancy = manager.request(request)
        describe(tree, label, tenancy.allocation)
        manager.release(tenancy)

    print(
        "\nAlgorithm 1 always returns the minimum-occupancy split; the"
        "\nfeasibility-only search returns whichever valid split it finds first"
        "\n(here it got lucky — both land on 1+5)."
    )

    asymmetric_demo()


def asymmetric_demo() -> None:
    """Three machines behind 30/50/200-capacity links: first fit goes wrong.

    The feasibility-only search packs greedily and leaves 5 VMs behind the
    thin 30-unit link (occupancy 1/3); the optimum parks them behind the
    200-unit link (occupancy 0.2 everywhere).
    """
    from repro.topology.tree import Tree

    tree = Tree()
    switch = tree.add_switch("switch", level=1)
    for name, capacity in (("thin", 30.0), ("mid", 50.0), ("fat", 200.0)):
        machine = tree.add_machine(name, slot_capacity=5)
        tree.attach(machine, switch, capacity)
    tree.freeze()
    request = DeterministicVC(n_vms=6, bandwidth=10.0)

    print("\nasymmetric topology (link capacities 30 / 50 / 200), same request:")
    for label, allocator in (
        ("Algorithm 1 (SVC)", SVCHomogeneousAllocator()),
        ("adapted TIVC", AdaptedTIVCAllocator()),
    ):
        manager = NetworkManager(tree, allocator=allocator)
        tenancy = manager.request(request)
        describe(tree, label, tenancy.allocation)
        manager.release(tenancy)
    print("the occupancy-blind search parks the bulk behind the thin link.")


if __name__ == "__main__":
    main()
