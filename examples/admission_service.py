#!/usr/bin/env python
"""The admission-control service end to end: concurrency, crash, recovery.

Drives the ``repro.service`` subsystem in-process:

1. start a journaled :class:`AdmissionService` over a tiny datacenter and
   hammer it from four client threads with mixed SVC/deterministic requests;
2. read the stats endpoint (latency percentiles, per-level occupancy);
3. "crash" by abandoning the service without shutdown, then recover a fresh
   manager from the snapshot + journal tail and verify it matches the
   single-threaded oracle replay of the write-ahead log field for field.

The same flow over TCP: ``svc-repro serve --port 0 --journal-dir /tmp/svc``
and talk to it with :class:`repro.service.ServiceClient`.

Run: ``python examples/admission_service.py`` (a few seconds)
"""

import tempfile
import threading
from pathlib import Path

from repro.abstractions import DeterministicVC, HomogeneousSVC
from repro.manager import NetworkManager
from repro.service import (
    AdmissionService,
    DurabilityStore,
    network_state_to_dict,
    oracle_replay,
    recover_manager,
)
from repro.topology import TINY_SPEC, build_datacenter


def client(service: AdmissionService, seed: int) -> None:
    admitted = []
    for index in range(40):
        if index % 2:
            request = HomogeneousSVC(n_vms=2 + index % 4, mean=90.0, std=35.0)
        else:
            request = DeterministicVC(n_vms=2 + index % 3, bandwidth=80.0)
        ticket = service.submit(request, wait=True)
        if ticket.outcome == "admitted":
            admitted.append(ticket.request_id)
        if len(admitted) > 4 and index % 3 == 0:
            service.release(admitted.pop(0))


def main() -> None:
    tree = build_datacenter(TINY_SPEC)
    workdir = Path(tempfile.mkdtemp(prefix="svc-admission-"))
    print(f"datacenter: {tree.describe()}")
    print(f"journal:    {workdir}\n")

    store = DurabilityStore(workdir, snapshot_every=40)
    manager = NetworkManager(tree)
    service = AdmissionService(manager, store=store, workers=4).start()
    threads = [threading.Thread(target=client, args=(service, s)) for s in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = service.stats()
    counters = stats["counters"]
    latency = stats["admission_latency"]
    print("after 4 concurrent clients:")
    print(f"  submitted {counters['submitted']}, admitted {counters['admitted']}, "
          f"rejected {counters['rejected']}, released {counters['released']}")
    print(f"  admission latency p50/p99: "
          f"{latency['p50_ms']:.2f} / {latency['p99_ms']:.2f} ms")
    for row in stats["occupancy"]["by_level"]:
        print(f"  {row['label']:>12}: mean occupancy {row['mean_occupancy']:.3f} "
              f"over {row['links']} links")

    # Simulate a crash: no shutdown, no final snapshot — only the WAL and
    # whatever periodic snapshot the service already wrote survive.
    live_fingerprint = network_state_to_dict(manager.state)
    live_active = sorted(t.request_id for t in manager.tenancies())
    service.stop()
    store.close()

    recovery_store = DurabilityStore(workdir)
    recovered, report = recover_manager(recovery_store, tree)
    recovery_store.close()
    print(f"\nrecovery: snapshot seq {report.snapshot_seq}, "
          f"{report.replayed_records} journal records replayed")

    oracle_state, oracle_active = oracle_replay(workdir / "wal.jsonl", tree)
    assert network_state_to_dict(recovered.state) == live_fingerprint
    assert network_state_to_dict(recovered.state) == network_state_to_dict(oracle_state)
    assert sorted(t.request_id for t in recovered.tenancies()) == live_active
    assert sorted(oracle_active) == live_active
    print(f"recovered state matches the live manager and the oracle replay: "
          f"{len(live_active)} active tenancies, field-for-field identical")


if __name__ == "__main__":
    main()
