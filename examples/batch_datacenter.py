#!/usr/bin/env python
"""Batched MapReduce-style jobs under three bandwidth abstractions.

Replays the batched-jobs scenario of Section VI-B1 at reduced scale: a FIFO
queue of jobs with volatile per-second bandwidth demands runs under mean-VC,
percentile-VC, and SVC.  The output shows the trade-off the paper builds the
SVC model around: mean-VC finishes the batch soonest but stretches individual
jobs (bursts exceed its reservation); percentile-VC keeps jobs fast but
strangles concurrency; SVC gets both, statistically.

Run: ``python examples/batch_datacenter.py`` (about a minute)
"""

import numpy as np

from repro.experiments.tables import Table
from repro.simulation import WorkloadConfig, generate_jobs, run_batch
from repro.topology import SMALL_SPEC, build_datacenter


def main() -> None:
    tree = build_datacenter(SMALL_SPEC)
    config = WorkloadConfig(num_jobs=40, mean_job_size=12.0, max_job_size=48)
    specs = generate_jobs(config, np.random.default_rng(7))
    print(f"datacenter: {tree.describe()}")
    print(f"workload:   {config.num_jobs} jobs, mean size {config.mean_job_size:.0f} VMs,")
    print("            demand per VM ~ Normal(mu_d, (rho*mu_d)^2), rho ~ U(0,1)\n")

    table = Table(
        title="Batched jobs: concurrency vs per-job speed",
        headers=["model", "batch completion (s)", "avg job runtime (s)", "avg wait (s)"],
    )
    for model in ("mean-vc", "percentile-vc", "svc"):
        result = run_batch(tree, specs, model=model, rng=np.random.default_rng(1))
        table.add_row(
            model,
            float(result.makespan),
            result.average_running_time,
            result.average_waiting_time,
        )
    print(table.format())
    print(
        "\nmean-VC: lowest batch completion, highest per-job runtime."
        "\npercentile-VC: fastest jobs, worst completion (exclusive reservations)."
        "\nSVC: close to percentile-VC runtimes at much better completion time."
    )


if __name__ == "__main__":
    main()
