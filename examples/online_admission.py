#!/usr/bin/env python
"""Online admission control with Poisson arrivals (Section VI-B2).

Jobs arrive over time at a 60% datacenter load and are rejected if no valid
placement exists at that moment.  Compares the admission behaviour of the
three abstractions and shows the occupancy statistics the network manager
tracks (the Fig. 7 / Fig. 8 / Fig. 9 quantities).

Run: ``python examples/online_admission.py`` (about a minute)
"""

import numpy as np

from repro.experiments.tables import Table
from repro.simulation import (
    WorkloadConfig,
    generate_jobs,
    run_online,
)
from repro.simulation.workload import assign_poisson_arrivals
from repro.topology import SMALL_SPEC, build_datacenter


def main() -> None:
    tree = build_datacenter(SMALL_SPEC)
    config = WorkloadConfig(num_jobs=60, mean_job_size=12.0, max_job_size=48)
    specs = generate_jobs(config, np.random.default_rng(0))
    specs = assign_poisson_arrivals(
        specs,
        load=0.6,
        total_slots=tree.total_slots,
        mean_job_size=config.mean_job_size,
        mean_compute_time=config.mean_compute_time,
        rng=np.random.default_rng(1),
    )
    print(f"datacenter: {tree.describe()}")
    print(f"arrivals:   {len(specs)} jobs, Poisson at 60% load\n")

    table = Table(
        title="Online admission at 60% load",
        headers=[
            "model", "rejected (%)", "avg concurrent jobs",
            "avg runtime (s)", "median max-occupancy",
        ],
    )
    for model in ("mean-vc", "percentile-vc", "svc"):
        result = run_online(tree, specs, model=model, rng=np.random.default_rng(2))
        table.add_row(
            model,
            100.0 * result.rejection_rate,
            result.average_concurrency,
            result.average_running_time,
            float(np.median(result.max_occupancies)),
        )
    print(table.format())
    print(
        "\nmean-VC rejects least (smallest reservations); percentile-VC most."
        "\nSVC statistically multiplexes: fewer rejections and more concurrent"
        "\njobs than percentile-VC at comparable per-job runtimes."
    )


if __name__ == "__main__":
    main()
