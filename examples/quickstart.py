#!/usr/bin/env python
"""Quickstart: reserve a Stochastic Virtual Cluster in a simulated datacenter.

Builds a 120-machine tree datacenter, submits one SVC request
``<N=20, mu=300 Mbps, sigma=150 Mbps>`` with a 5% outage risk, inspects where
the VMs landed and what the probabilistic reservation costs on each link,
then releases the tenancy.

Run: ``python examples/quickstart.py``
"""

from repro import HomogeneousSVC, NetworkManager, SMALL_SPEC, build_datacenter


def main() -> None:
    tree = build_datacenter(SMALL_SPEC)
    print(f"datacenter: {tree.describe()}")

    # The network manager enforces Pr(sum of demands > S_L) < epsilon = 0.05
    # on every link (the probabilistic bandwidth guarantee, Eq. 1).
    manager = NetworkManager(tree, epsilon=0.05)

    # A tenant asks for 20 VMs whose bandwidth demand is uncertain:
    # each VM's demand ~ Normal(300, 150^2) Mbps.
    request = HomogeneousSVC(n_vms=20, mean=300.0, std=150.0)
    tenancy = manager.request(request)
    if tenancy is None:
        raise SystemExit("request rejected — should not happen on an empty datacenter")

    allocation = tenancy.allocation
    host = tree.node(allocation.host_node)
    print(f"\nadmitted request {tenancy.request_id}: {request}")
    print(f"hosting subtree: {host.name} (level {host.level})")
    print("per-machine placement:")
    for machine_id, count in sorted(allocation.machine_counts.items()):
        print(f"  {tree.node(machine_id).name}: {count} VMs")

    print("\nper-link stochastic demand (mean Mbps, std Mbps):")
    for link_id, demand in sorted(allocation.link_demands.items()):
        name = tree.node(link_id).name
        print(f"  uplink of {name}: mean={demand.mean:8.1f}  std={demand.std:7.1f}")

    print(f"\nmax bandwidth occupancy ratio after placement: {manager.max_occupancy():.3f}")
    print(f"(the allocation algorithm minimized this; validity requires < 1)")

    manager.release(tenancy)
    print(f"\nreleased; datacenter pristine again: {manager.state.is_pristine()}")


if __name__ == "__main__":
    main()
