#!/usr/bin/env python
"""Heterogeneous SVC placement: exact DP vs. substring heuristic vs. first fit.

A tenant's VMs have *different* demand distributions (Section V) — e.g. a
master node with heavy, bursty traffic and workers with lighter needs.  This
example places one such cluster with all three heterogeneous algorithms and
compares objective quality and placement shape, then cross-checks the
heuristic against the exponential exact optimum.

Run: ``python examples/heterogeneous_placement.py``
"""

from repro import (
    FirstFitAllocator,
    HeterogeneousSVC,
    NetworkManager,
    Normal,
    SVCHeterogeneousAllocator,
    SVCHeterogeneousExactAllocator,
    TINY_SPEC,
    build_datacenter,
)


def build_request() -> HeterogeneousSVC:
    """One chatty master + two aggregators + five light workers."""
    demands = (
        Normal(500.0, 200.0),   # master: heavy and volatile
        Normal(300.0, 80.0),    # aggregator
        Normal(300.0, 80.0),    # aggregator
        Normal(120.0, 30.0),    # workers...
        Normal(120.0, 30.0),
        Normal(100.0, 20.0),
        Normal(100.0, 20.0),
        Normal(80.0, 10.0),
    )
    return HeterogeneousSVC(n_vms=len(demands), demands=demands)


def main() -> None:
    tree = build_datacenter(TINY_SPEC)
    request = build_request()
    print(f"datacenter: {tree.describe()}")
    print(f"request:    {request.n_vms} VMs with per-VM Normal(mu_i, sigma_i^2) demands")
    order = request.sorted_order()
    print(f"sorted by 95th percentile (ascending VM ids): {order}\n")

    results = {}
    for label, allocator in (
        ("exact DP (2^N)", SVCHeterogeneousExactAllocator()),
        ("substring heuristic", SVCHeterogeneousAllocator()),
        ("plain first fit", FirstFitAllocator()),
    ):
        manager = NetworkManager(tree, allocator=allocator)
        tenancy = manager.request(request)
        allocation = tenancy.allocation
        results[label] = allocation.max_occupancy
        placement = {
            tree.node(machine_id).name: vms
            for machine_id, vms in sorted(allocation.machine_vms.items())
        }
        print(f"{label}:")
        print(f"  max occupancy ratio: {allocation.max_occupancy:.4f}")
        print(f"  placement (machine -> VM ids): {placement}")
        manager.release(tenancy)
        print()

    gap = results["substring heuristic"] - results["exact DP (2^N)"]
    print(f"heuristic optimality gap vs exact: {gap:+.4f}")
    print(f"first-fit excess over heuristic:   "
          f"{results['plain first fit'] - results['substring heuristic']:+.4f}")


if __name__ == "__main__":
    main()
