#!/usr/bin/env python
"""From profiling run to tenant request: the SVC derivation pipeline.

Profiles a synthetic MapReduce-style application (quiet compute phases
punctuated by heavy shuffle bursts), fits per-VM demand distributions, and
derives all three abstractions from the *same* profile.  Then shows the
economics: what each abstraction effectively reserves on a link carrying the
whole cluster, and how many such tenants one 10 Gbps ToR uplink can admit.

Run: ``python examples/profile_to_request.py``
"""

import numpy as np

from repro.network import NetworkState
from repro.profiling import (
    derive_deterministic_vc,
    derive_heterogeneous_svc,
    derive_homogeneous_svc,
    synthetic_phased_trace,
)
from repro.stochastic import DemandAggregate, Normal, effective_bandwidth_total
from repro.stochastic.normal import sum_iid


def main() -> None:
    rng = np.random.default_rng(0)
    n_vms = 10
    print(f"profiling {n_vms} VMs of a phased (MapReduce-like) application...")
    traces = [
        synthetic_phased_trace(
            low_rate=30.0, high_rate=600.0, rng=rng,
            duration=600, high_fraction=0.25, cap=1000.0,
        )
        for _ in range(n_vms)
    ]
    for idx, trace in enumerate(traces[:3]):
        print(
            f"  vm{idx}: mean={trace.mean:6.1f}  std={trace.std:6.1f}  "
            f"p95={trace.percentile(95):6.1f} Mbps"
        )
    print("  ...")

    svc = derive_homogeneous_svc(traces)
    het = derive_heterogeneous_svc(traces)
    mean_vc = derive_deterministic_vc(traces, percentile=50.0)
    pctl_vc = derive_deterministic_vc(traces, percentile=95.0)
    print(f"\nderived requests from the same profile:")
    print(f"  SVC:            <N={svc.n_vms}, mu={svc.mean:.1f}, sigma={svc.std:.1f}>")
    first = het.demands[0]
    print(f"  heterogeneous:  per-VM fits, e.g. Normal({first.mean:.1f}, {first.std:.1f}^2)")
    print(f"  median-VC:      <N={mean_vc.n_vms}, B={mean_vc.bandwidth:.1f}>")
    print(f"  percentile-VC:  <N={pctl_vc.n_vms}, B={pctl_vc.bandwidth:.1f}>")

    # What a link carrying half the cluster (worst split) must provision:
    half = n_vms // 2
    aggregate = DemandAggregate().add(sum_iid(Normal(svc.mean, svc.std), half))
    svc_effective = effective_bandwidth_total(aggregate, epsilon=0.05)
    pctl_reserved = half * pctl_vc.bandwidth
    print(f"\nworst-split link load for one tenant ({half} VMs below the link):")
    print(f"  SVC effective bandwidth (eps=0.05): {svc_effective:8.1f} Mbps")
    print(f"  percentile-VC reservation:          {pctl_reserved:8.1f} Mbps")
    print(f"  SVC saving: {100 * (1 - svc_effective / pctl_reserved):.1f}%")

    # How many such tenants fit on a 10 Gbps ToR uplink?
    capacity = 10_000.0
    count_pctl = int(capacity // pctl_reserved)
    aggregate = DemandAggregate()
    count_svc = 0
    demand = sum_iid(Normal(svc.mean, svc.std), half)
    while True:
        trial = aggregate.add(demand)
        if effective_bandwidth_total(trial, epsilon=0.05) >= capacity:
            break
        aggregate = trial
        count_svc += 1
    print(f"\ntenants admitted by a 10 Gbps uplink (worst-split accounting):")
    print(f"  percentile-VC: {count_pctl}")
    print(f"  SVC(0.05):     {count_svc}  "
          f"(statistical multiplexing gain: +{count_svc - count_pctl})")


if __name__ == "__main__":
    main()
